//! Method of snapshots: right singular vectors from the Gram matrix.
//!
//! For a tall snapshot matrix `A` (`M x N`, `M >> N`) the right singular
//! vectors are the eigenvectors of `AᵀA` and the singular values are the
//! square roots of its eigenvalues. This is the per-rank local stage of
//! APMOS (Algorithm 2, step 1): each rank computes `(Ṽⁱ, Σ̃ⁱ)` from its own
//! row block without ever forming global objects.

use crate::eig::sym_eig;
use crate::gemm::gram;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Right singular vectors and singular values of `a` via the method of
/// snapshots: returns `(V_k, s_k)` with `V_k ∈ R^{N x k}` and `s_k`
/// descending, where `k = min(k_request, N)`.
///
/// Eigenvalues that are numerically negative (round-off from the Gram
/// accumulation) are clamped to zero.
pub fn generate_right_vectors<T: Scalar>(a: &Matrix<T>, k: usize) -> (Matrix<T>, Vec<T>) {
    let n = a.cols();
    let k = k.min(n);
    let g = gram(a);
    let e = sym_eig(&g);
    let s: Vec<T> = e.values[..k].iter().map(|&l| l.max(T::ZERO).sqrt()).collect();
    let v = e.vectors.first_columns(k);
    (v, s)
}

/// As [`generate_right_vectors`], but discards directions whose singular
/// value falls below `rtol * s_max` (the truncation the APMOS paper applies
/// before communicating, to avoid shipping noise directions).
pub fn generate_right_vectors_tol<T: Scalar>(
    a: &Matrix<T>,
    k: usize,
    rtol: f64,
) -> (Matrix<T>, Vec<T>) {
    let (v, s) = generate_right_vectors(a, k);
    let smax = s.first().copied().unwrap_or(T::ZERO).to_f64();
    let keep = s.iter().take_while(|&&x| x.to_f64() > rtol * smax).count().max(1).min(s.len());
    (v.first_columns(keep), s[..keep].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::orthogonality_error;
    use crate::random::{matrix_with_spectrum, seeded_rng};
    use crate::svd::svd;

    #[test]
    fn matches_svd_right_vectors() {
        let mut rng = seeded_rng(31);
        let a = matrix_with_spectrum(60, 8, &[5.0, 3.0, 1.0, 0.5, 0.2], &mut rng);
        let (v, s) = generate_right_vectors(&a, 5);
        let f = svd(&a);
        for (got, want) in s.iter().zip(&f.s) {
            assert!((got - want).abs() < 1e-8, "sigma {got} vs {want}");
        }
        // Columns agree up to sign.
        for j in 0..5 {
            if f.s[j] < 1e-8 {
                continue;
            }
            let dot: f64 = (0..8).map(|i| v[(i, j)] * f.vt[(j, i)]).sum();
            assert!((dot.abs() - 1.0).abs() < 1e-6, "mode {j} misaligned: |dot| = {}", dot.abs());
        }
    }

    #[test]
    fn vectors_are_orthonormal() {
        let mut rng = seeded_rng(4);
        let a = matrix_with_spectrum(50, 10, &[4.0, 2.0, 1.0, 0.7, 0.3], &mut rng);
        let (v, _) = generate_right_vectors(&a, 5);
        assert!(orthogonality_error(&v) < 1e-9);
    }

    #[test]
    fn k_clamped_to_width() {
        let mut rng = seeded_rng(6);
        let a = matrix_with_spectrum(30, 4, &[1.0], &mut rng);
        let (v, s) = generate_right_vectors(&a, 100);
        assert_eq!(v.cols(), 4);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn tolerance_truncation_drops_noise() {
        let mut rng = seeded_rng(8);
        let a = matrix_with_spectrum(40, 6, &[10.0, 5.0], &mut rng);
        let (v, s) = generate_right_vectors_tol(&a, 6, 1e-8);
        assert_eq!(s.len(), 2, "only two directions above tolerance: {s:?}");
        assert_eq!(v.cols(), 2);
    }

    #[test]
    fn singular_values_nonnegative_descending() {
        let mut rng = seeded_rng(12);
        let a = matrix_with_spectrum(25, 7, &[2.0, 2.0, 1.0], &mut rng);
        let (_, s) = generate_right_vectors(&a, 7);
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &x in &s {
            assert!(x >= 0.0);
        }
    }
}
