//! Golub–Kahan–Reinsch SVD: Householder bidiagonalization followed by
//! implicit-shift QR iteration on the bidiagonal with accumulated Givens
//! rotations (Golub & Van Loan, Algorithms 5.4.2 / 8.6.1 / 8.6.2).
//!
//! This is the fast default for the small square matrices (`R`, `W`) that
//! the streaming and APMOS drivers factorize at every step. Its output is
//! property-tested against the one-sided Jacobi kernel.

use crate::gemm::matmul_into;
use crate::matrix::Matrix;
use crate::qr::{apply_reflector, apply_reflector_right, qr_block, qr_thin_into};
use crate::rot::{rot_block, RotAccumulator};
use crate::scalar::Scalar;
use crate::svd::{convergence_stats, Svd, SvdInfo};
use crate::workspace::Workspace;
use crate::wy;

/// Givens pair `(c, s, r)` with `c*f + s*g = r`, `-s*f + c*g = 0`,
/// `r = hypot(f, g)`.
#[inline]
fn givens<T: Scalar>(f: T, g: T) -> (T, T, T) {
    if g == T::ZERO {
        (T::ONE, T::ZERO, f)
    } else if f == T::ZERO {
        (T::ZERO, T::ONE, g)
    } else {
        let r = f.hypot(g);
        (f / r, g / r, r)
    }
}

/// Householder bidiagonalization of a tall matrix (`m >= n`):
/// `A = U B Vᵀ` with `B` upper bidiagonal. Returns `(U, d, e, V)` where
/// `d` is the diagonal (length `n`) and `e` the superdiagonal (length
/// `n.saturating_sub(1)`).
///
/// Strongly tall inputs go through a thin QR first (`A = Q R`, bidiagonalize
/// the `n x n` core, then `U = Q U_R` in one GEMM): the reflector-at-a-time
/// reduction below is level-2, so on an `m >> n` matrix it would dominate
/// the whole SVD, while the QR route keeps every `O(m n^2)` term on the
/// blocked compact-WY / packed-GEMM engine.
#[allow(clippy::type_complexity)]
pub fn bidiagonalize<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, Vec<T>, Vec<T>, Matrix<T>) {
    let (m, n) = a.shape();
    assert!(m >= n, "bidiagonalize requires m >= n");
    if m >= 2 * n && n >= 8 {
        let mut ws = Workspace::new();
        let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
        let (ur, d, e, v) = bidiagonalize_dense(&r);
        let mut u = Matrix::zeros(0, 0);
        matmul_into(q.view(), ur.view(), &mut u);
        return (u, d, e, v);
    }
    bidiagonalize_dense(a)
}

/// The direct reflector-at-a-time reduction (no QR preprocessing).
#[allow(clippy::type_complexity)]
fn bidiagonalize_dense<T: Scalar>(a: &Matrix<T>) -> (Matrix<T>, Vec<T>, Vec<T>, Matrix<T>) {
    let (m, n) = a.shape();
    let mut ws = Workspace::new();
    let mut b = a.clone();
    // Left reflectors annihilate below-diagonal entries of column k; right
    // reflectors annihilate row entries right of the superdiagonal. Both
    // sets use the row layout of the QR kernels: row k of the store holds
    // the unnormalized vector, the norm array holds ‖v‖² with 0.0 marking
    // an identity reflector — which is exactly what the compact-WY
    // accumulation below consumes.
    let rcount = n.saturating_sub(2);
    let mut lvs = ws.take(n, m);
    let mut lvn = vec![T::ZERO; n];
    let mut rvs = ws.take(rcount, n.saturating_sub(1));
    let mut rvn = vec![T::ZERO; rcount];

    for k in 0..n {
        // Left Householder on b[k.., k].
        let vlen = m - k;
        {
            let vrow = &mut lvs.row_mut(k)[..vlen];
            for (idx, vv) in vrow.iter_mut().enumerate() {
                *vv = b[(k + idx, k)];
            }
        }
        let norm = lvs.row(k)[..vlen].iter().map(|x| *x * *x).sum::<T>().sqrt();
        if norm > T::ZERO {
            let alpha = if lvs[(k, 0)] >= T::ZERO { -norm } else { norm };
            lvs[(k, 0)] -= alpha;
            let vn2: T = lvs.row(k)[..vlen].iter().map(|x| *x * *x).sum();
            if vn2 > T::ZERO {
                lvn[k] = vn2;
                apply_reflector(b.as_mut_slice(), n, k, k, n, &lvs.row(k)[..vlen], vn2);
                b[(k, k)] = alpha;
                for i in k + 1..m {
                    b[(i, k)] = T::ZERO;
                }
            }
        }

        // Right Householder on b[k, k+2..].
        if k + 2 < n {
            let wlen = n - k - 1;
            {
                let wrow = &mut rvs.row_mut(k)[..wlen];
                for (idx, wv) in wrow.iter_mut().enumerate() {
                    *wv = b[(k, k + 1 + idx)];
                }
            }
            let norm = rvs.row(k)[..wlen].iter().map(|x| *x * *x).sum::<T>().sqrt();
            if norm > T::ZERO {
                let alpha = if rvs[(k, 0)] >= T::ZERO { -norm } else { norm };
                rvs[(k, 0)] -= alpha;
                let wn2: T = rvs.row(k)[..wlen].iter().map(|x| *x * *x).sum();
                if wn2 > T::ZERO {
                    rvn[k] = wn2;
                    apply_reflector_right(
                        b.as_mut_slice(),
                        n,
                        k,
                        m,
                        k + 1,
                        &rvs.row(k)[..wlen],
                        wn2,
                    );
                    b[(k, k + 1)] = alpha;
                    for j in k + 2..n {
                        b[(k, j)] = T::ZERO;
                    }
                }
            }
        }
    }

    // Form thin U (m x n): backward accumulation of the left reflectors,
    // in compact-WY panels when the problem is big enough to feed the
    // packed GEMM engine.
    let mut u = Matrix::zeros(m, n);
    for i in 0..n {
        u[(i, i)] = T::ONE;
    }
    let nb_u = qr_block(m, n);
    if nb_u <= 1 {
        wy::accumulate_reverse_unblocked(&lvs, &lvn, n, 0, &mut u);
    } else {
        wy::accumulate_reverse(&lvs, &lvn, n, 0, nb_u, &mut u, &mut ws);
    }

    // Form V (n x n): right reflector k acts on rows k+1.. (offset 1).
    let mut v = Matrix::identity(n);
    let nb_v = qr_block(n.saturating_sub(1), rcount);
    if nb_v <= 1 {
        wy::accumulate_reverse_unblocked(&rvs, &rvn, rcount, 1, &mut v);
    } else {
        wy::accumulate_reverse(&rvs, &rvn, rcount, 1, nb_v, &mut v, &mut ws);
    }

    let d: Vec<T> = (0..n).map(|i| b[(i, i)]).collect();
    let e: Vec<T> = (0..n.saturating_sub(1)).map(|i| b[(i, i + 1)]).collect();
    (u, d, e, v)
}

/// A factor matrix paired with the accumulator recording its rotations.
/// Keeps the QR-iteration call sites at "rotate these columns" while the
/// accumulator decides between the direct level-1 update and the windowed
/// level-3 path.
struct Rotated<'a, T: Scalar> {
    m: &'a mut Matrix<T>,
    acc: &'a mut RotAccumulator<T>,
}

impl<T: Scalar> Rotated<'_, T> {
    #[inline]
    fn rotate(&mut self, j: usize, k: usize, c: T, s: T, ws: &mut Workspace) {
        self.acc.rotate(self.m, j, k, c, s, ws);
    }

    fn flush(&mut self, ws: &mut Workspace) {
        self.acc.flush(self.m, ws);
    }
}

/// One implicit-shift Golub–Kahan SVD step on the block `d[p..=q]`,
/// `e[p..q]`, with rotations recorded against `u` and `v`. The rotation
/// parameters derive only from `d`/`e`, which the accumulators never
/// touch — so the bidiagonal (and hence every singular value) is bitwise
/// independent of how the factor updates are batched.
fn gk_step<T: Scalar>(
    d: &mut [T],
    e: &mut [T],
    p: usize,
    q: usize,
    u: &mut Rotated<'_, T>,
    v: &mut Rotated<'_, T>,
    ws: &mut Workspace,
) {
    // Wilkinson shift from the trailing 2x2 of Bᵀ B.
    let eq2 = if q >= 2 && q - 1 > p { e[q - 2] } else { T::ZERO };
    let t11 = d[q - 1] * d[q - 1] + eq2 * eq2;
    let t12 = d[q - 1] * e[q - 1];
    let t22 = d[q] * d[q] + e[q - 1] * e[q - 1];
    let diff = T::from_f64(0.5) * (t11 - t22);
    let mu = if t12 == T::ZERO {
        t22
    } else {
        let denom = diff + diff.signum() * diff.hypot(t12);
        if denom == T::ZERO {
            t22
        } else {
            t22 - t12 * t12 / denom
        }
    };

    let mut y = d[p] * d[p] - mu;
    let mut z = d[p] * e[p];

    for k in p..q {
        // Right rotation on columns (k, k+1): annihilates the bulge in row
        // k-1 (or realizes the shift when k == p).
        let (c, s, r) = givens(y, z);
        if k > p {
            e[k - 1] = r;
        }
        let f = c * d[k] + s * e[k];
        let ek = -s * d[k] + c * e[k];
        let g = s * d[k + 1]; // bulge at (k+1, k)
        let dk1 = c * d[k + 1];
        d[k] = f;
        e[k] = ek;
        d[k + 1] = dk1;
        v.rotate(k, k + 1, c, s, ws);

        // Left rotation on rows (k, k+1): annihilates the bulge at (k+1, k).
        let (c2, s2, r2) = givens(d[k], g);
        d[k] = r2;
        let f2 = c2 * e[k] + s2 * d[k + 1];
        let dk1b = -s2 * e[k] + c2 * d[k + 1];
        e[k] = f2;
        d[k + 1] = dk1b;
        if k + 1 < q {
            let g2 = s2 * e[k + 1]; // bulge at (k, k+2)
            e[k + 1] *= c2;
            y = e[k];
            z = g2;
        }
        u.rotate(k, k + 1, c2, s2, ws);
    }
}

/// When `d[k]` is negligible (k < q), chase `e[k]` away with left rotations
/// against the rows below, zeroing row `k`'s coupling.
fn zero_diag_row_chase<T: Scalar>(
    d: &mut [T],
    e: &mut [T],
    k: usize,
    q: usize,
    u: &mut Rotated<'_, T>,
    ws: &mut Workspace,
) {
    let mut f = e[k];
    e[k] = T::ZERO;
    for j in k + 1..=q {
        let (c, s, r) = givens(d[j], f);
        d[j] = r;
        if j < q {
            f = -s * e[j];
            e[j] *= c;
        }
        // U ← U Lᵀ with L mixing rows (j, k).
        u.rotate(j, k, c, s, ws);
    }
}

/// When `d[q]` is negligible, chase `e[q-1]` away with right rotations
/// against the columns to the left.
fn zero_diag_col_chase<T: Scalar>(
    d: &mut [T],
    e: &mut [T],
    p: usize,
    q: usize,
    v: &mut Rotated<'_, T>,
    ws: &mut Workspace,
) {
    let mut f = e[q - 1];
    e[q - 1] = T::ZERO;
    for j in (p..q).rev() {
        let (c, s, r) = givens(d[j], f);
        d[j] = r;
        if j > p {
            f = -s * e[j - 1];
            e[j - 1] *= c;
        }
        v.rotate(j, q, c, s, ws);
    }
}

/// SVD of an upper-bidiagonal matrix given by diagonal `d` and superdiagonal
/// `e`, with the rotations accumulated into the preexisting factors `u`, `v`.
pub fn bidiagonal_svd<T: Scalar>(d: Vec<T>, e: Vec<T>, u: Matrix<T>, v: Matrix<T>) -> Svd<T> {
    bidiagonal_svd_with_info(d, e, u, v).0
}

/// [`bidiagonal_svd`] plus its convergence report. A non-converged solve
/// (iteration limit hit — should never happen) still returns the best
/// factorization found, and bumps
/// [`convergence_stats::failures`](crate::svd::convergence_stats).
pub fn bidiagonal_svd_with_info<T: Scalar>(
    d: Vec<T>,
    e: Vec<T>,
    u: Matrix<T>,
    v: Matrix<T>,
) -> (Svd<T>, SvdInfo) {
    let cap_u = rot_block(u.rows(), u.cols());
    let cap_v = rot_block(v.rows(), v.cols());
    bidiagonal_svd_impl(d, e, u, v, cap_u, cap_v, None)
}

/// [`bidiagonal_svd_with_info`] under an explicit QR-sweep budget instead
/// of the default `60 n² + 100` cap. A solve that exhausts the budget
/// returns the best factorization found with `converged = false` and bumps
/// [`convergence_stats::failures`](crate::svd::convergence_stats) exactly
/// once — the hook tests use to exercise the non-convergence path, since a
/// well-posed spectrum never trips the default cap.
pub fn bidiagonal_svd_budgeted<T: Scalar>(
    d: Vec<T>,
    e: Vec<T>,
    u: Matrix<T>,
    v: Matrix<T>,
    max_iter: usize,
) -> (Svd<T>, SvdInfo) {
    let cap_u = rot_block(u.rows(), u.cols());
    let cap_v = rot_block(v.rows(), v.cols());
    bidiagonal_svd_impl(d, e, u, v, cap_u, cap_v, Some(max_iter))
}

/// The QR iteration with explicit rotation-window capacities, so tests can
/// pit the accumulated path against the direct reference without touching
/// the process-wide knob.
#[cfg(test)]
fn bidiagonal_svd_caps<T: Scalar>(
    d: Vec<T>,
    e: Vec<T>,
    u: Matrix<T>,
    v: Matrix<T>,
    cap_u: usize,
    cap_v: usize,
) -> (Svd<T>, SvdInfo) {
    bidiagonal_svd_impl(d, e, u, v, cap_u, cap_v, None)
}

fn bidiagonal_svd_impl<T: Scalar>(
    mut d: Vec<T>,
    mut e: Vec<T>,
    mut u: Matrix<T>,
    mut v: Matrix<T>,
    cap_u: usize,
    cap_v: usize,
    budget: Option<usize>,
) -> (Svd<T>, SvdInfo) {
    let n = d.len();
    if n == 0 {
        return (Svd { u, s: d, vt: v.transpose() }, SvdInfo { iterations: 0, converged: true });
    }
    let eps = T::EPSILON;
    let bnorm =
        d.iter().chain(e.iter()).fold(T::ZERO, |acc, x| acc.max(x.abs())).max(T::MIN_POSITIVE);

    let max_iter = budget.unwrap_or(60 * n * n + 100);
    let mut iter = 0;
    let mut converged = true;
    let mut ws = Workspace::new();
    let mut acc_u = RotAccumulator::new(cap_u);
    let mut acc_v = RotAccumulator::new(cap_v);
    {
        let mut u = Rotated { m: &mut u, acc: &mut acc_u };
        let mut v = Rotated { m: &mut v, acc: &mut acc_v };
        loop {
            // Deflate negligible superdiagonals.
            for k in 0..n.saturating_sub(1) {
                if e[k].abs()
                    <= eps * (d[k].abs() + d[k + 1].abs()) + eps * bnorm * T::from_f64(1e-2)
                {
                    e[k] = T::ZERO;
                }
            }
            // Largest unreduced block end.
            let q = match (0..n.saturating_sub(1)).rev().find(|&k| e[k] != T::ZERO) {
                Some(k) => k + 1,
                None => break,
            };
            // Block start.
            let mut p = q - 1;
            while p > 0 && e[p - 1] != T::ZERO {
                p -= 1;
            }

            iter += 1;
            if iter > max_iter {
                // Bail out with whatever has converged so the caller still
                // gets a usable (if less accurate) result — and say so.
                converged = false;
                convergence_stats::record_failure();
                break;
            }

            // Zero diagonals force deflation chases.
            if d[q].abs() <= eps * bnorm {
                d[q] = T::ZERO;
                zero_diag_col_chase(&mut d, &mut e, p, q, &mut v, &mut ws);
                continue;
            }
            if let Some(k) = (p..q).find(|&k| d[k].abs() <= eps * bnorm) {
                d[k] = T::ZERO;
                zero_diag_row_chase(&mut d, &mut e, k, q, &mut u, &mut ws);
                continue;
            }

            gk_step(&mut d, &mut e, p, q, &mut u, &mut v, &mut ws);
        }
        // The iteration only reads `d`/`e`; the factors see their pending
        // windows exactly once, here.
        u.flush(&mut ws);
        v.flush(&mut ws);
    }

    // Make singular values non-negative (flip U columns).
    for k in 0..n {
        if d[k] < T::ZERO {
            d[k] = -d[k];
            for i in 0..u.rows() {
                u[(i, k)] = -u[(i, k)];
            }
        }
    }

    // Sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("NaN singular value"));
    let s: Vec<T> = order.iter().map(|&i| d[i]).collect();
    let u_sorted = u.select_columns(&order);
    let v_sorted = v.select_columns(&order);

    (Svd { u: u_sorted, s, vt: v_sorted.transpose() }, SvdInfo { iterations: iter, converged })
}

/// Full Golub–Kahan SVD of a tall (or square) matrix. Panics if `m < n`.
pub fn golub_kahan_svd<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    golub_kahan_svd_with_info(a).0
}

/// [`golub_kahan_svd`] plus the QR iteration's convergence report.
pub fn golub_kahan_svd_with_info<T: Scalar>(a: &Matrix<T>) -> (Svd<T>, SvdInfo) {
    let (m, n) = a.shape();
    assert!(m >= n, "golub_kahan_svd requires m >= n (got {m}x{n}); use svd() for wide input");
    if n == 0 {
        let f = Svd { u: Matrix::zeros(m, 0), s: Vec::new(), vt: Matrix::zeros(0, 0) };
        return (f, SvdInfo { iterations: 0, converged: true });
    }
    let (u, d, e, v) = bidiagonalize(a);
    bidiagonal_svd_with_info(d, e, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::orthogonality_error;
    use crate::svd::jacobi::jacobi_svd;

    fn check(a: &Matrix, tol: f64) {
        let f = golub_kahan_svd(a);
        let rec = matmul(&f.u.mul_diag(&f.s), &f.vt);
        let err = (a - &rec).frobenius_norm() / a.frobenius_norm().max(1.0);
        assert!(err < tol, "reconstruction error {err} for {:?}", a.shape());
        assert!(orthogonality_error(&f.u) < 1e-10, "U not orthonormal");
        assert!(orthogonality_error(&f.vt.transpose()) < 1e-10, "V not orthonormal");
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not descending: {:?}", f.s);
        }
        for &sv in &f.s {
            assert!(sv >= 0.0);
        }
    }

    #[test]
    fn bidiagonalization_reconstructs() {
        let a = Matrix::from_fn(20, 8, |i, j| ((i * 5 + j * 3) as f64 * 0.17).sin());
        let (u, d, e, v) = bidiagonalize(&a);
        let n = 8;
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            b[(i, i)] = d[i];
            if i + 1 < n {
                b[(i, i + 1)] = e[i];
            }
        }
        let rec = matmul(&matmul(&u, &b), &v.transpose());
        assert!((&rec - &a).max_abs() < 1e-12);
        assert!(orthogonality_error(&u) < 1e-13);
        assert!(orthogonality_error(&v) < 1e-13);
    }

    #[test]
    fn gk_matches_diagonal() {
        let a = Matrix::from_diag(&[2.0, 7.0, 0.5, 3.0]);
        let f = golub_kahan_svd(&a);
        let want = [7.0, 3.0, 2.0, 0.5];
        for (got, want) in f.s.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12, "{:?}", f.s);
        }
    }

    #[test]
    fn gk_reconstructs_tall() {
        check(&Matrix::from_fn(50, 12, |i, j| ((i * 13 + j * 7) as f64 * 0.31).sin()), 1e-11);
    }

    #[test]
    fn gk_reconstructs_square() {
        check(&Matrix::from_fn(30, 30, |i, j| ((i + 2 * j) as f64 * 0.23).cos()), 1e-11);
    }

    #[test]
    fn gk_rank_deficient() {
        let u1: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).sin()).collect();
        let a = Matrix::from_fn(40, 10, |i, j| u1[i] * ((j + 1) as f64));
        let f = golub_kahan_svd(&a);
        assert!(f.s[1] < 1e-10 * f.s[0], "rank-1 matrix, got {:?}", &f.s[..3]);
        check(&a, 1e-11);
    }

    #[test]
    fn gk_zero_matrix() {
        let f = golub_kahan_svd(&Matrix::<f64>::zeros(6, 4));
        assert!(f.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gk_matches_jacobi_singular_values() {
        let a = Matrix::from_fn(35, 14, |i, j| ((i * 3 + j * j) as f64 * 0.19).sin() + 0.05);
        let gk = golub_kahan_svd(&a);
        let jac = jacobi_svd(&a);
        for (x, y) in gk.s.iter().zip(&jac.s) {
            assert!((x - y).abs() < 1e-10 * jac.s[0].max(1.0), "GK {x} vs Jacobi {y}");
        }
    }

    #[test]
    fn gk_graded_spectrum() {
        // Geometric decay over 8 orders of magnitude.
        let n = 10;
        let diag: Vec<f64> = (0..n).map(|i| 10f64.powi(-(i as i32))).collect();
        let q1 =
            crate::qr::thin_qr(&Matrix::from_fn(25, n, |i, j| ((i + 3 * j) as f64).sin() + 0.1)).q;
        let q2 =
            crate::qr::thin_qr(&Matrix::from_fn(n, n, |i, j| ((2 * i + j) as f64).cos() + 0.1)).q;
        let a = matmul(&q1.mul_diag(&diag), &q2.transpose());
        let f = golub_kahan_svd(&a);
        for (got, want) in f.s.iter().zip(&diag) {
            assert!(
                (got - want).abs() < 1e-8 * want.max(1e-10),
                "sigma {got} vs {want}: spectrum {:?}",
                f.s
            );
        }
    }

    #[test]
    fn gk_single_column() {
        let a = Matrix::from_columns(&[vec![3.0, 4.0, 0.0]]);
        let f = golub_kahan_svd(&a);
        assert!((f.s[0] - 5.0).abs() < 1e-13);
    }

    #[test]
    fn accumulated_matches_direct_reference() {
        // Drive the window capacities explicitly so the comparison is
        // independent of the process-wide knob (which other tests share).
        let a = Matrix::from_fn(160, 24, |i, j| ((i * 7 + j * 11) as f64 * 0.13).sin() + 0.02);
        let (u, d, e, v) = bidiagonalize(&a);
        let (direct, di) = bidiagonal_svd_caps(d.clone(), e.clone(), u.clone(), v.clone(), 1, 1);
        assert!(di.converged);
        for (cap_u, cap_v) in [(24, 24), (4, 4), (8, 24)] {
            let (acc, ai) =
                bidiagonal_svd_caps(d.clone(), e.clone(), u.clone(), v.clone(), cap_u, cap_v);
            assert!(ai.converged);
            assert_eq!(ai.iterations, di.iterations, "iteration path must not depend on caps");
            assert_eq!(direct.s, acc.s, "singular values must be bitwise identical");
            assert!((&acc.u - &direct.u).max_abs() < 1e-12, "U diverged at caps ({cap_u},{cap_v})");
            assert!(
                (&acc.vt - &direct.vt).max_abs() < 1e-12,
                "V diverged at caps ({cap_u},{cap_v})"
            );
        }
    }

    #[test]
    fn convergence_info_reports_success() {
        let a = Matrix::from_fn(30, 10, |i, j| ((i * 3 + j * 5) as f64 * 0.21).cos());
        let (f, info) = golub_kahan_svd_with_info(&a);
        assert!(info.converged, "well-posed solve must converge");
        assert!(info.iterations >= 1, "non-diagonal input needs at least one step");
        assert!(f.reconstruction_error(&a) < 1e-11);
        // Diagonal input converges without a single QR step.
        let (_, info0) = golub_kahan_svd_with_info(&Matrix::from_diag(&[3.0, 1.0, 2.0]));
        assert!(info0.converged);
        assert_eq!(info0.iterations, 0);
    }

    #[test]
    fn givens_contract() {
        let (c, s, r) = givens(3.0, 4.0);
        assert!((c * 3.0 + s * 4.0 - r).abs() < 1e-14);
        assert!((-s * 3.0 + c * 4.0).abs() < 1e-14);
        assert!((r - 5.0).abs() < 1e-14);
        assert_eq!(givens(2.0, 0.0), (1.0, 0.0, 2.0));
        assert_eq!(givens(0.0, 2.0), (0.0, 1.0, 2.0));
    }

    #[test]
    fn exhausted_budget_reports_non_convergence_exactly_once() {
        // A strongly coupled bidiagonal needs several QR sweeps; a budget of
        // one sweep cannot finish, so the solve must come back with
        // `converged = false` and bump the process-wide failure counter by
        // exactly one. Diff the counter rather than asserting its absolute
        // value so concurrent tests can't interfere.
        let d = vec![4.0, 3.0, 2.0, 1.0];
        let e = vec![1.0, 1.0, 1.0];
        let before = convergence_stats::failures();
        let (f, info) = bidiagonal_svd_budgeted(
            d.clone(),
            e.clone(),
            Matrix::identity(4),
            Matrix::identity(4),
            1,
        );
        assert!(!info.converged, "a one-sweep budget must not converge this spectrum");
        assert!(info.iterations >= 1);
        assert_eq!(
            convergence_stats::failures() - before,
            1,
            "non-convergence must be recorded exactly once"
        );
        // The bail-out still hands back a usable factorization: orthonormal
        // factors (rotations only) of the right shape, sigmas non-negative.
        assert_eq!(f.u.shape(), (4, 4));
        assert_eq!(f.vt.shape(), (4, 4));
        assert!(orthogonality_error(&f.u) < 1e-12);
        assert!(orthogonality_error(&f.vt.transpose()) < 1e-12);
        assert!(f.s.iter().all(|&s| s >= 0.0));

        // The same spectrum under an ample budget converges cleanly and
        // leaves the failure counter alone.
        let before = convergence_stats::failures();
        let (_, ok) = bidiagonal_svd_budgeted(d, e, Matrix::identity(4), Matrix::identity(4), 1000);
        assert!(ok.converged);
        assert_eq!(convergence_stats::failures() - before, 0);
    }
}
