//! One-sided (Hestenes) Jacobi SVD.
//!
//! Orthogonalizes the columns of a working copy of `A` by plane rotations,
//! accumulating the rotations into `V`. On convergence the column norms are
//! the singular values and the normalized columns form `U`. One-sided Jacobi
//! attains high relative accuracy even for small singular values, which makes
//! it the reference kernel that all other SVD paths in this workspace are
//! tested against.
//!
//! Two sweep strategies share the extraction code:
//!
//! - **Direct** (the reference): each pair `(p, q)` reads its column
//!   moments straight from `U` and rotates the full `m`-row columns in
//!   place — level-1, memory-bound, but with the high-relative-accuracy
//!   property intact. Small factors (per [`crate::rot::rot_block`]) and
//!   `PSVD_ROT_BLOCK=1` always take this path.
//! - **Accumulated**: per sweep, one level-3 Gram product `B = UᵀU`
//!   supplies every pair's moments; each rotation updates `B` by its
//!   congruence `B ← RᵀBR` (cache-resident, `O(n)` per pair) and is
//!   *recorded* into [`crate::rot::RotAccumulator`] windows for `U` and
//!   `V`, which are applied by GEMM once per sweep. The trajectory differs
//!   from the direct path in rounding only; singular values and modes
//!   agree to the documented `≤1e-12 · σ₁` contract. The Gram detour does
//!   give up the tiny-singular-value relative accuracy (the usual `κ²`
//!   effect), which is why the shape heuristic keeps small problems — the
//!   ones used as accuracy references — on the direct path.
//!
//! Expects `m >= n`; the dispatcher in [`crate::svd`] transposes wider
//! matrices before calling in.

use crate::gemm::gram_into;
use crate::matrix::Matrix;
use crate::rot::{rot_block, RotAccumulator};
use crate::scalar::Scalar;
use crate::svd::{convergence_stats, Svd, SvdInfo};
use crate::workspace::Workspace;

/// Maximum number of sweeps over all column pairs.
const MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD of a tall (or square) matrix. Panics if `m < n`.
pub fn jacobi_svd<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    jacobi_svd_with_info(a).0
}

/// [`jacobi_svd`] plus its convergence report (`iterations` = sweeps).
pub fn jacobi_svd_with_info<T: Scalar>(a: &Matrix<T>) -> (Svd<T>, SvdInfo) {
    let (m, n) = a.shape();
    assert!(m >= n, "jacobi_svd requires m >= n (got {m}x{n}); use svd() for wide input");
    jacobi_svd_caps(a, rot_block(m, n))
}

/// The sweep loop with an explicit rotation-window capacity, so tests can
/// pit the accumulated path against the direct reference without touching
/// the process-wide knob.
pub(crate) fn jacobi_svd_caps<T: Scalar>(a: &Matrix<T>, cap: usize) -> (Svd<T>, SvdInfo) {
    let (m, n) = a.shape();
    if n == 0 {
        let f = Svd { u: Matrix::zeros(m, 0), s: Vec::new(), vt: Matrix::zeros(0, 0) };
        return (f, SvdInfo { iterations: 0, converged: true });
    }
    if cap <= 1 {
        jacobi_direct(a)
    } else {
        jacobi_accumulated(a, cap)
    }
}

/// Jacobi rotation for the pair `(p, q)` with moments `alpha = ‖u_p‖²`,
/// `beta = ‖u_q‖²`, `gamma = u_p·u_q`: returns `(c, s, t)` zeroing the
/// inner product, or `None` when the pair is already orthogonal (or
/// degenerate) at tolerance `eps`.
#[inline]
fn pair_rotation<T: Scalar>(alpha: T, beta: T, gamma: T, eps: T) -> Option<(T, T, T)> {
    if alpha == T::ZERO || beta == T::ZERO {
        return None;
    }
    if gamma.abs() <= eps * (alpha * beta).sqrt() {
        return None;
    }
    let zeta = (beta - alpha) / (T::from_f64(2.0) * gamma);
    let t = zeta.signum() / (zeta.abs() + (T::ONE + zeta * zeta).sqrt());
    let c = T::ONE / (T::ONE + t * t).sqrt();
    let s = c * t;
    Some((c, s, t))
}

/// The direct reference path: moments from `U`, rotations applied in place.
fn jacobi_direct<T: Scalar>(a: &Matrix<T>) -> (Svd<T>, SvdInfo) {
    let (m, n) = a.shape();
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let eps = T::EPSILON;

    let mut sweeps = 0;
    let mut converged = false;
    while sweeps < MAX_SWEEPS {
        sweeps += 1;
        let mut off_diagonal = false;
        for p in 0..n {
            for q in p + 1..n {
                // Column moments.
                let mut alpha = T::ZERO;
                let mut beta = T::ZERO;
                let mut gamma = T::ZERO;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                let Some((c, s, _)) = pair_rotation(alpha, beta, gamma, eps) else {
                    continue;
                };
                off_diagonal = true;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if !off_diagonal {
            converged = true;
            break;
        }
    }
    if !converged {
        convergence_stats::record_failure();
    }
    (extract(&u, &v), SvdInfo { iterations: sweeps, converged })
}

/// The accumulated path: per-sweep Gram moments, congruence-maintained,
/// with `U`/`V` rotations recorded into level-3 windows.
fn jacobi_accumulated<T: Scalar>(a: &Matrix<T>, cap: usize) -> (Svd<T>, SvdInfo) {
    let (_, n) = a.shape();
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let eps = T::EPSILON;
    let mut ws = Workspace::new();
    let mut acc_u = RotAccumulator::new(cap);
    let mut acc_v = RotAccumulator::new(cap);
    let mut b = Matrix::zeros(0, 0);

    let mut sweeps = 0;
    let mut converged = false;
    while sweeps < MAX_SWEEPS {
        sweeps += 1;
        // One level-3 product supplies every pair's moments for the sweep;
        // U must be current first.
        acc_u.flush(&mut u, &mut ws);
        gram_into(u.view(), &mut b);
        let mut off_diagonal = false;
        for p in 0..n {
            for q in p + 1..n {
                let alpha = b[(p, p)];
                let beta = b[(q, q)];
                let gamma = b[(p, q)];
                let Some((c, s, t)) = pair_rotation(alpha, beta, gamma, eps) else {
                    continue;
                };
                off_diagonal = true;
                // Congruence update B ← RᵀBR, with the analytically exact
                // values substituted where rounding would otherwise leave
                // residue: the (p,q) product is zeroed by construction and
                // the diagonal obeys the standard t·gamma transfer.
                for i in 0..n {
                    let bp = b[(i, p)];
                    let bq = b[(i, q)];
                    b[(i, p)] = c * bp - s * bq;
                    b[(i, q)] = s * bp + c * bq;
                }
                for j in 0..n {
                    let bp = b[(p, j)];
                    let bq = b[(q, j)];
                    b[(p, j)] = c * bp - s * bq;
                    b[(q, j)] = s * bp + c * bq;
                }
                b[(p, p)] = alpha - t * gamma;
                b[(q, q)] = beta + t * gamma;
                b[(p, q)] = T::ZERO;
                b[(q, p)] = T::ZERO;
                // `u_p ← c·u_p − s·u_q, u_q ← s·u_p + c·u_q` in the
                // accumulator's convention is `rotate(p, q, c, −s)`.
                acc_u.rotate(&mut u, p, q, c, -s, &mut ws);
                acc_v.rotate(&mut v, p, q, c, -s, &mut ws);
            }
        }
        if !off_diagonal {
            converged = true;
            break;
        }
    }
    acc_u.flush(&mut u, &mut ws);
    acc_v.flush(&mut v, &mut ws);
    if !converged {
        convergence_stats::record_failure();
    }
    (extract(&u, &v), SvdInfo { iterations: sweeps, converged })
}

/// Extract singular values (column norms of `u`, descending), normalized
/// `U`, and `Vᵀ` — shared by both sweep strategies.
fn extract<T: Scalar>(u: &Matrix<T>, v: &Matrix<T>) -> Svd<T> {
    let (m, n) = u.shape();
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<T> = (0..n).map(|j| u.col_norm(j)).collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("NaN singular value"));

    let mut s = Vec::with_capacity(n);
    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    for (jj, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        if sigma > T::ZERO {
            for i in 0..m {
                u_sorted[(i, jj)] = u[(i, j)] / sigma;
            }
        }
        for i in 0..n {
            v_sorted[(i, jj)] = v[(i, j)];
        }
    }
    // Zero singular values leave zero columns in U; replace with canonical
    // unit vectors orthogonal to the rest is unnecessary for our use (the
    // drivers always truncate past the numerical rank), so we keep zeros.

    Svd { u: u_sorted, s, vt: v_sorted.transpose() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::orthogonality_error;

    fn check_reconstruction(a: &Matrix, tol: f64) {
        let f = jacobi_svd(a);
        let rec = matmul(&f.u.mul_diag(&f.s), &f.vt);
        let err = (a - &rec).frobenius_norm() / a.frobenius_norm().max(1.0);
        assert!(err < tol, "reconstruction error {err}");
        assert!(orthogonality_error(&f.u.first_columns(rank_of(&f.s))) < 1e-10);
        assert!(orthogonality_error(&f.vt.transpose()) < 1e-10);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1], "singular values not descending: {:?}", f.s);
        }
        for &sv in &f.s {
            assert!(sv >= 0.0);
        }
    }

    fn rank_of(s: &[f64]) -> usize {
        let smax = s.first().copied().unwrap_or(0.0);
        s.iter().filter(|&&x| x > 1e-12 * smax.max(1.0)).count()
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_diag(&[4.0, 1.0, 9.0]);
        let f = jacobi_svd(&a);
        assert!((f.s[0] - 9.0).abs() < 1e-12);
        assert!((f.s[1] - 4.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_reconstructs_tall() {
        let a = Matrix::from_fn(40, 10, |i, j| ((i * 13 + j * 7) as f64 * 0.31).sin());
        check_reconstruction(&a, 1e-12);
    }

    #[test]
    fn svd_reconstructs_square() {
        let a = Matrix::from_fn(25, 25, |i, j| ((i + j * j) as f64 * 0.11).cos());
        check_reconstruction(&a, 1e-12);
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-2 matrix from an outer product sum.
        let u1: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin()).collect();
        let u2: Vec<f64> = (0..30).map(|i| (i as f64 * 0.5).cos()).collect();
        let a = Matrix::from_fn(30, 8, |i, j| {
            u1[i] * (j as f64 + 1.0) + u2[i] * ((j * j) as f64 * 0.1)
        });
        let f = jacobi_svd(&a);
        assert!(f.s[2] < 1e-10 * f.s[0], "rank should be 2, got s = {:?}", f.s);
        check_reconstruction(&a, 1e-11);
    }

    #[test]
    fn svd_of_zero() {
        let a = Matrix::<f64>::zeros(10, 4);
        let f = jacobi_svd(&a);
        assert!(f.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn svd_known_2x2() {
        // A = [[3, 0], [4, 5]] has singular values sqrt(45) and sqrt(5).
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 5.0]]);
        let f = jacobi_svd(&a);
        assert!((f.s[0] - 45f64.sqrt()).abs() < 1e-12);
        assert!((f.s[1] - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn small_singular_values_accurate() {
        // Graded matrix: Jacobi should capture sigma ~ 1e-8 accurately.
        let d = [1.0, 1e-4, 1e-8];
        let a = Matrix::from_diag(&d);
        // Mix with an orthogonal-ish transform to make it non-diagonal.
        let q =
            crate::qr::thin_qr(&Matrix::from_fn(3, 3, |i, j| ((i * 2 + j) as f64).sin() + 0.2)).q;
        let mixed = matmul(&q, &a);
        let f = jacobi_svd(&mixed);
        for (got, want) in f.s.iter().zip(&d) {
            assert!((got - want).abs() / want < 1e-9, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn accumulated_matches_direct_reference() {
        let a = Matrix::from_fn(150, 16, |i, j| ((i * 5 + j * 9) as f64 * 0.17).sin() + 0.03);
        let (direct, di) = jacobi_svd_caps(&a, 1);
        let (acc, ai) = jacobi_svd_caps(&a, 16);
        assert!(di.converged && ai.converged);
        let s0 = direct.s[0];
        for (x, y) in direct.s.iter().zip(&acc.s) {
            assert!((x - y).abs() <= 1e-12 * s0, "sigma diverged: {x} vs {y}");
        }
        // Modes are only pinned down (up to sign) where the spectrum is
        // well separated; clustered directions legitimately differ between
        // the two trajectories, so compare the separated ones and the full
        // reconstruction.
        for k in 0..direct.s.len() {
            let gap_lo = if k > 0 { direct.s[k - 1] - direct.s[k] } else { f64::INFINITY };
            let gap_hi =
                if k + 1 < direct.s.len() { direct.s[k] - direct.s[k + 1] } else { f64::INFINITY };
            if gap_lo.min(gap_hi) < 1e-3 * s0 {
                continue;
            }
            let dot: f64 = (0..a.rows()).map(|i| direct.u[(i, k)] * acc.u[(i, k)]).sum();
            let sign = if dot < 0.0 { -1.0 } else { 1.0 };
            for i in 0..a.rows() {
                let (x, y) = (direct.u[(i, k)], sign * acc.u[(i, k)]);
                assert!((x - y).abs() < 1e-10, "U mode {k} diverged: {x} vs {y}");
            }
            for i in 0..a.cols() {
                let (x, y) = (direct.vt[(k, i)], sign * acc.vt[(k, i)]);
                assert!((x - y).abs() < 1e-10, "V mode {k} diverged: {x} vs {y}");
            }
        }
        assert!(orthogonality_error(&acc.u) < 1e-10);
        assert!(orthogonality_error(&acc.vt.transpose()) < 1e-10);
        assert!(acc.reconstruction_error(&a) < 1e-12);
    }

    #[test]
    fn convergence_info_reports_success() {
        let a = Matrix::from_fn(20, 6, |i, j| ((i + 2 * j) as f64 * 0.29).sin());
        let (_, info) = jacobi_svd_with_info(&a);
        assert!(info.converged);
        assert!(info.iterations >= 1 && info.iterations <= MAX_SWEEPS);
    }

    #[test]
    #[should_panic(expected = "requires m >= n")]
    fn wide_input_panics() {
        jacobi_svd(&Matrix::<f64>::zeros(2, 5));
    }
}
