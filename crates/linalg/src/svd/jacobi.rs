//! One-sided (Hestenes) Jacobi SVD.
//!
//! Orthogonalizes the columns of a working copy of `A` by plane rotations,
//! accumulating the rotations into `V`. On convergence the column norms are
//! the singular values and the normalized columns form `U`. One-sided Jacobi
//! attains high relative accuracy even for small singular values, which makes
//! it the reference kernel that all other SVD paths in this workspace are
//! tested against.
//!
//! Expects `m >= n`; the dispatcher in [`crate::svd`] transposes wider
//! matrices before calling in.

use crate::matrix::Matrix;
use crate::svd::Svd;

/// Maximum number of sweeps over all column pairs.
const MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD of a tall (or square) matrix. Panics if `m < n`.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    assert!(m >= n, "jacobi_svd requires m >= n (got {m}x{n}); use svd() for wide input");
    if n == 0 {
        return Svd { u: Matrix::zeros(m, 0), s: Vec::new(), vt: Matrix::zeros(0, 0) };
    }

    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;

    for _sweep in 0..MAX_SWEEPS {
        let mut off_diagonal = false;
        for p in 0..n {
            for q in p + 1..n {
                // Column moments.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() {
                    continue;
                }
                off_diagonal = true;
                // Rotation zeroing the (p,q) inner product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if !off_diagonal {
            break;
        }
    }

    // Extract singular values and normalize U's columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| u.col_norm(j)).collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("NaN singular value"));

    let mut s = Vec::with_capacity(n);
    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    for (jj, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u_sorted[(i, jj)] = u[(i, j)] / sigma;
            }
        }
        for i in 0..n {
            v_sorted[(i, jj)] = v[(i, j)];
        }
    }
    // Zero singular values leave zero columns in U; replace with canonical
    // unit vectors orthogonal to the rest is unnecessary for our use (the
    // drivers always truncate past the numerical rank), so we keep zeros.

    Svd { u: u_sorted, s, vt: v_sorted.transpose() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::orthogonality_error;

    fn check_reconstruction(a: &Matrix, tol: f64) {
        let f = jacobi_svd(a);
        let rec = matmul(&f.u.mul_diag(&f.s), &f.vt);
        let err = (a - &rec).frobenius_norm() / a.frobenius_norm().max(1.0);
        assert!(err < tol, "reconstruction error {err}");
        assert!(orthogonality_error(&f.u.first_columns(rank_of(&f.s))) < 1e-10);
        assert!(orthogonality_error(&f.vt.transpose()) < 1e-10);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1], "singular values not descending: {:?}", f.s);
        }
        for &sv in &f.s {
            assert!(sv >= 0.0);
        }
    }

    fn rank_of(s: &[f64]) -> usize {
        let smax = s.first().copied().unwrap_or(0.0);
        s.iter().filter(|&&x| x > 1e-12 * smax.max(1.0)).count()
    }

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_diag(&[4.0, 1.0, 9.0]);
        let f = jacobi_svd(&a);
        assert!((f.s[0] - 9.0).abs() < 1e-12);
        assert!((f.s[1] - 4.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_reconstructs_tall() {
        let a = Matrix::from_fn(40, 10, |i, j| ((i * 13 + j * 7) as f64 * 0.31).sin());
        check_reconstruction(&a, 1e-12);
    }

    #[test]
    fn svd_reconstructs_square() {
        let a = Matrix::from_fn(25, 25, |i, j| ((i + j * j) as f64 * 0.11).cos());
        check_reconstruction(&a, 1e-12);
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-2 matrix from an outer product sum.
        let u1: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin()).collect();
        let u2: Vec<f64> = (0..30).map(|i| (i as f64 * 0.5).cos()).collect();
        let a = Matrix::from_fn(30, 8, |i, j| {
            u1[i] * (j as f64 + 1.0) + u2[i] * ((j * j) as f64 * 0.1)
        });
        let f = jacobi_svd(&a);
        assert!(f.s[2] < 1e-10 * f.s[0], "rank should be 2, got s = {:?}", f.s);
        check_reconstruction(&a, 1e-11);
    }

    #[test]
    fn svd_of_zero() {
        let a = Matrix::zeros(10, 4);
        let f = jacobi_svd(&a);
        assert!(f.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn svd_known_2x2() {
        // A = [[3, 0], [4, 5]] has singular values sqrt(45) and sqrt(5).
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 5.0]]);
        let f = jacobi_svd(&a);
        assert!((f.s[0] - 45f64.sqrt()).abs() < 1e-12);
        assert!((f.s[1] - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn small_singular_values_accurate() {
        // Graded matrix: Jacobi should capture sigma ~ 1e-8 accurately.
        let d = [1.0, 1e-4, 1e-8];
        let a = Matrix::from_diag(&d);
        // Mix with an orthogonal-ish transform to make it non-diagonal.
        let q =
            crate::qr::thin_qr(&Matrix::from_fn(3, 3, |i, j| ((i * 2 + j) as f64).sin() + 0.2)).q;
        let mixed = matmul(&q, &a);
        let f = jacobi_svd(&mixed);
        for (got, want) in f.s.iter().zip(&d) {
            assert!((got - want).abs() / want < 1e-9, "sigma {got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "requires m >= n")]
    fn wide_input_panics() {
        jacobi_svd(&Matrix::zeros(2, 5));
    }
}
