//! Singular value decomposition drivers.
//!
//! Two dense kernels are provided — [`jacobi::jacobi_svd`] (one-sided
//! Hestenes Jacobi, the high-accuracy reference) and
//! [`golub_kahan::golub_kahan_svd`] (bidiagonalization + implicit-shift QR,
//! the fast default) — behind a single [`svd`] entry point that also handles
//! wide matrices (via transposition) and very tall matrices (via a QR
//! preprocessing step, exactly the `O(MN²) → O(MN·K)`-flavored reduction the
//! paper leans on).
//!
//! The expensive pieces — the tall-QR preprocessing and the `U = Q·Ũ`
//! lift — run on the threaded kernels in [`crate::gemm`] and [`crate::qr`]
//! once the problem is large enough; the small dense iterations stay
//! serial, so factorizations are bitwise reproducible at any thread
//! count.

pub mod golub_kahan;
pub mod jacobi;

use crate::gemm::matmul;
use crate::matrix::Matrix;
use crate::qr::thin_qr;
use crate::scalar::Scalar;

pub mod convergence_stats {
    //! Process-wide iterative-solver convergence counters.
    //!
    //! The iterative SVD kernels are backstopped by iteration limits that
    //! should never trigger; when one does, the kernel still returns its
    //! best factorization, but silently. Mirroring
    //! [`crate::matrix::alloc_stats`], every such bailout bumps a global
    //! counter here, so callers that use the plain [`super::svd`]-style
    //! entry points (no [`SvdInfo`](super::SvdInfo) in the signature) can
    //! still detect a degraded solve by diffing [`failures`] around the
    //! call. The `*_with_info` entry points report the same outcome
    //! per-call.

    use std::sync::atomic::{AtomicU64, Ordering};

    static FAILURES: AtomicU64 = AtomicU64::new(0);

    /// Record one solver bailout (iteration limit hit before convergence).
    #[inline]
    pub(crate) fn record_failure() {
        FAILURES.fetch_add(1, Ordering::Relaxed);
    }

    /// Bailouts since process start or the last [`reset`].
    pub fn failures() -> u64 {
        FAILURES.load(Ordering::Relaxed)
    }

    /// Zero the counter.
    pub fn reset() {
        FAILURES.store(0, Ordering::Relaxed);
    }
}

/// Convergence report for an iterative SVD kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SvdInfo {
    /// Iterations (QR steps / deflation chases, or Jacobi sweeps) spent.
    pub iterations: usize,
    /// Whether the kernel converged within its iteration budget. A
    /// `false` here also bumps [`convergence_stats::failures`].
    pub converged: bool,
}

/// A (thin) singular value decomposition `A = U diag(s) Vᵀ`.
///
/// For an `m x n` input with `p = min(m, n)`: `u` is `m x p`, `s` has length
/// `p` (non-negative, descending), and `vt` is `p x n`.
#[derive(Clone, Debug)]
pub struct Svd<T: Scalar = f64> {
    /// Left singular vectors (columns).
    pub u: Matrix<T>,
    /// Singular values, descending and non-negative.
    pub s: Vec<T>,
    /// Right singular vectors, transposed (rows).
    pub vt: Matrix<T>,
}

impl<T: Scalar> Svd<T> {
    /// Keep only the leading `k` singular triplets.
    pub fn truncated(&self, k: usize) -> Svd<T> {
        let k = k.min(self.s.len());
        Svd { u: self.u.first_columns(k), s: self.s[..k].to_vec(), vt: self.vt.row_block(0, k) }
    }

    /// Reconstruct `U diag(s) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix<T> {
        matmul(&self.u.mul_diag(&self.s), &self.vt)
    }

    /// Relative Frobenius reconstruction error against `a`.
    pub fn reconstruction_error(&self, a: &Matrix<T>) -> f64 {
        (a - &self.reconstruct()).frobenius_norm().to_f64() / a.frobenius_norm().to_f64().max(1.0)
    }

    /// Numerical rank at relative threshold `rtol` (relative to `s[0]`).
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(T::ZERO).to_f64();
        self.s.iter().filter(|&&x| x.to_f64() > rtol * smax).count()
    }

    /// The right singular vectors as columns (`n x p`).
    pub fn v(&self) -> Matrix<T> {
        self.vt.transpose()
    }

    /// 2-norm condition number `σ_max / σ_min` (`f64::INFINITY` for
    /// singular or empty input).
    pub fn condition_number(&self) -> f64 {
        match (self.s.first(), self.s.last()) {
            (Some(&hi), Some(&lo)) if lo > T::ZERO => hi.to_f64() / lo.to_f64(),
            _ => f64::INFINITY,
        }
    }

    /// Fraction of total squared energy captured by the leading `k`
    /// triplets (Eckart–Young: the best possible rank-`k` share).
    pub fn energy_fraction(&self, k: usize) -> f64 {
        let total: f64 = self.s.iter().map(|x| x.to_f64() * x.to_f64()).sum();
        if total == 0.0 {
            return 1.0;
        }
        self.s[..k.min(self.s.len())].iter().map(|x| x.to_f64() * x.to_f64()).sum::<f64>() / total
    }
}

/// Which dense kernel factorizes the (preprocessed) core matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SvdMethod {
    /// Golub–Kahan bidiagonalization + implicit-shift QR (fast default).
    #[default]
    GolubKahan,
    /// One-sided Jacobi (slow, high relative accuracy).
    Jacobi,
}

/// Aspect ratio beyond which a tall matrix is QR-preprocessed before the
/// dense kernel runs on the small triangular factor.
const QR_PREPROCESS_RATIO: usize = 2;

/// Thin SVD with the default kernel.
pub fn svd<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    svd_with(a, SvdMethod::default())
}

/// Thin SVD with an explicit kernel choice.
///
/// Wide matrices are handled by factorizing the transpose and swapping
/// factors; very tall matrices are first reduced by a thin QR.
pub fn svd_with<T: Scalar>(a: &Matrix<T>, method: SvdMethod) -> Svd<T> {
    let (m, n) = a.shape();
    if m < n {
        let f = svd_with(&a.transpose(), method);
        return Svd { u: f.vt.transpose(), s: f.s, vt: f.u.transpose() };
    }
    if n > 0 && m >= QR_PREPROCESS_RATIO * n && m > 32 {
        // A = Q R; SVD(R) = Ur S Vᵀ; A = (Q Ur) S Vᵀ.
        let qr = thin_qr(a);
        let core = dense_kernel(&qr.r, method);
        return Svd { u: matmul(&qr.q, &core.u), s: core.s, vt: core.vt };
    }
    dense_kernel(a, method)
}

fn dense_kernel<T: Scalar>(a: &Matrix<T>, method: SvdMethod) -> Svd<T> {
    match method {
        SvdMethod::GolubKahan => golub_kahan::golub_kahan_svd(a),
        SvdMethod::Jacobi => jacobi::jacobi_svd(a),
    }
}

/// Truncated thin SVD: only the `k` leading triplets, default kernel.
pub fn truncated_svd<T: Scalar>(a: &Matrix<T>, k: usize) -> Svd<T> {
    svd(a).truncated(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::orthogonality_error;

    fn wavy(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| ((i * 7 + j * 13) as f64 * 0.13).sin() + 0.02 * (i as f64))
    }

    #[test]
    fn dispatcher_tall_uses_qr_path() {
        let a = wavy(200, 10);
        let f = svd(&a);
        assert_eq!(f.u.shape(), (200, 10));
        assert!(f.reconstruction_error(&a) < 1e-11);
        assert!(orthogonality_error(&f.u) < 1e-10);
    }

    #[test]
    fn dispatcher_wide_transposes() {
        let a = wavy(8, 40);
        let f = svd(&a);
        assert_eq!(f.u.shape(), (8, 8));
        assert_eq!(f.vt.shape(), (8, 40));
        assert!(f.reconstruction_error(&a) < 1e-11);
        assert!(orthogonality_error(&f.vt.transpose()) < 1e-10);
    }

    #[test]
    fn both_methods_agree() {
        let a = wavy(30, 12);
        let gk = svd_with(&a, SvdMethod::GolubKahan);
        let jc = svd_with(&a, SvdMethod::Jacobi);
        for (x, y) in gk.s.iter().zip(&jc.s) {
            assert!((x - y).abs() < 1e-9 * jc.s[0], "{x} vs {y}");
        }
    }

    #[test]
    fn truncated_svd_is_best_low_rank() {
        // Eckart–Young sanity: truncated reconstruction error equals the
        // tail singular values' energy.
        let a = wavy(40, 15);
        let full = svd(&a);
        let k = 5;
        let trunc = full.truncated(k);
        let err = (&a - &trunc.reconstruct()).frobenius_norm();
        let tail: f64 = full.s[k..].iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((err - tail).abs() < 1e-9 * full.s[0], "err {err} vs tail {tail}");
    }

    #[test]
    fn rank_detection() {
        let c: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let a = Matrix::from_fn(20, 6, |i, j| c[i] * (j + 1) as f64);
        let f = svd(&a);
        assert_eq!(f.rank(1e-10), 1);
    }

    #[test]
    fn v_accessor_transposes() {
        let a = wavy(10, 4);
        let f = svd(&a);
        assert_eq!(f.v().shape(), (4, 4));
        assert_eq!(f.v()[(1, 2)], f.vt[(2, 1)]);
    }

    #[test]
    fn condition_number_and_energy() {
        let a = Matrix::from_diag(&[4.0, 2.0, 1.0]);
        let f = svd(&a);
        assert!((f.condition_number() - 4.0).abs() < 1e-12);
        // energy: 16 + 4 + 1 = 21; leading 1 -> 16/21.
        assert!((f.energy_fraction(1) - 16.0 / 21.0).abs() < 1e-12);
        assert!((f.energy_fraction(3) - 1.0).abs() < 1e-14);
        assert!((f.energy_fraction(99) - 1.0).abs() < 1e-14);
        // Singular matrix -> infinite condition number.
        let g = svd(&Matrix::from_diag(&[1.0, 0.0]));
        assert!(g.condition_number().is_infinite());
    }

    #[test]
    fn svd_tiny_shapes() {
        // 1x1
        let f = svd(&Matrix::from_vec(1, 1, vec![-3.0]));
        assert!((f.s[0] - 3.0).abs() < 1e-15);
        // 1xN
        let f = svd(&Matrix::from_vec(1, 4, vec![1.0, 2.0, 2.0, 0.0]));
        assert!((f.s[0] - 3.0).abs() < 1e-14);
        // Nx1
        let f = svd(&Matrix::from_vec(4, 1, vec![1.0, 2.0, 2.0, 0.0]));
        assert!((f.s[0] - 3.0).abs() < 1e-14);
        // empty columns
        let f = svd(&Matrix::<f64>::zeros(3, 0));
        assert!(f.s.is_empty());
    }
}
