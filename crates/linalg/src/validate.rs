//! Validation utilities for comparing SVD factorizations.
//!
//! Singular vectors are unique only up to sign (and, for clustered singular
//! values, up to rotation within the cluster), so naive elementwise
//! comparisons of serial vs. parallel results are meaningless. These helpers
//! implement the comparisons the paper's Figure 1(a,b) relies on: per-mode
//! sign alignment and subspace angles.

use crate::gemm::matmul_tn;
use crate::matrix::Matrix;
use crate::svd::svd;

/// The sign (`+1.0` / `-1.0`) that best aligns each column of `b` with
/// the corresponding column of `a` (maximizing the inner product).
/// Allocation-light: one small `Vec<f64>` of length `cols`, no matrix
/// copy — the non-allocating core of [`align_signs`].
pub fn column_signs(a: &Matrix, b: &Matrix) -> Vec<f64> {
    assert_eq!(a.shape(), b.shape(), "align_signs: shape mismatch");
    (0..a.cols())
        .map(|j| {
            let dot: f64 = a.col_iter(j).zip(b.col_iter(j)).map(|(x, y)| x * y).sum();
            if dot < 0.0 {
                -1.0
            } else {
                1.0
            }
        })
        .collect()
}

/// Flip the sign of each column of `b` so it best matches the corresponding
/// column of `a` (maximizing the inner product). Returns the aligned copy.
pub fn align_signs(a: &Matrix, b: &Matrix) -> Matrix {
    let signs = column_signs(a, b);
    let mut out = b.clone();
    for (j, &s) in signs.iter().enumerate() {
        if s < 0.0 {
            out.scale_col_mut(j, -1.0);
        }
    }
    out
}

/// Per-mode error `‖a_j − ±b_j‖_2` after sign alignment (which is applied
/// on the fly — `b` is never copied).
pub fn mode_errors(a: &Matrix, b: &Matrix) -> Vec<f64> {
    let signs = column_signs(a, b);
    (0..a.cols())
        .map(|j| {
            let s = signs[j];
            a.col_iter(j)
                .zip(b.col_iter(j))
                .map(|(x, y)| {
                    let d = x - s * y;
                    d * d
                })
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

/// Pointwise absolute error of mode `j` after sign alignment — the exact
/// series plotted in Figure 1(a,b) of the paper. Sign alignment is applied
/// on the fly; `b` is never copied.
pub fn pointwise_mode_error(a: &Matrix, b: &Matrix, j: usize) -> Vec<f64> {
    let signs = column_signs(a, b);
    let s = signs[j];
    a.col_iter(j).zip(b.col_iter(j)).map(|(x, y)| (x - s * y).abs()).collect()
}

/// Principal angles (radians, ascending) between the column spaces of two
/// orthonormal bases, via the SVD of `QₐᵀQ_b`: `θ_i = acos(σ_i)`.
pub fn principal_angles(qa: &Matrix, qb: &Matrix) -> Vec<f64> {
    assert_eq!(qa.rows(), qb.rows(), "principal_angles: row count mismatch");
    let c = matmul_tn(qa, qb);
    let f = svd(&c);
    f.s.iter().map(|&x| x.clamp(-1.0, 1.0).acos()).collect()
}

/// The largest principal angle — zero iff the subspaces coincide.
pub fn max_principal_angle(qa: &Matrix, qb: &Matrix) -> f64 {
    principal_angles(qa, qb).into_iter().fold(0.0, f64::max)
}

/// Relative error between two singular-value spectra, `max_i |a_i − b_i| / a_0`.
pub fn spectrum_error(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let scale = a.first().copied().unwrap_or(1.0).max(f64::MIN_POSITIVE);
    (0..n).map(|i| (a[i] - b[i]).abs()).fold(0.0, f64::max) / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::thin_qr;
    use crate::random::{gaussian_matrix, seeded_rng};

    #[test]
    fn sign_alignment_fixes_flips() {
        let a = Matrix::from_columns(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = Matrix::from_columns(&[vec![-1.0, 0.0], vec![0.0, 1.0]]);
        let aligned = align_signs(&a, &b);
        assert_eq!(aligned, a);
    }

    #[test]
    fn mode_errors_zero_for_sign_flips() {
        let mut rng = seeded_rng(3);
        let q = thin_qr(&gaussian_matrix(20, 4, &mut rng)).q;
        let mut flipped = q.clone();
        flipped.scale_col_mut(1, -1.0);
        flipped.scale_col_mut(3, -1.0);
        let errs = mode_errors(&q, &flipped);
        for e in errs {
            assert!(e < 1e-14);
        }
    }

    #[test]
    fn pointwise_error_locates_discrepancy() {
        let a = Matrix::from_columns(&[vec![1.0, 0.0, 0.0]]);
        let b = Matrix::from_columns(&[vec![1.0, 0.1, 0.0]]);
        let err = pointwise_mode_error(&a, &b, 0);
        assert!(err[0] < 1e-15);
        assert!((err[1] - 0.1).abs() < 1e-15);
        assert!(err[2] < 1e-15);
    }

    #[test]
    fn identical_subspaces_zero_angle() {
        let mut rng = seeded_rng(5);
        let q = thin_qr(&gaussian_matrix(30, 5, &mut rng)).q;
        // Rotate the basis within its span: same subspace, different vectors.
        let r = thin_qr(&gaussian_matrix(5, 5, &mut rng)).q;
        let q2 = crate::gemm::matmul(&q, &r);
        assert!(max_principal_angle(&q, &q2) < 1e-7);
    }

    #[test]
    fn orthogonal_subspaces_right_angle() {
        let qa = Matrix::from_columns(&[vec![1.0, 0.0, 0.0, 0.0]]);
        let qb = Matrix::from_columns(&[vec![0.0, 1.0, 0.0, 0.0]]);
        let angle = max_principal_angle(&qa, &qb);
        assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn spectrum_error_scale_invariant_numerator() {
        assert_eq!(spectrum_error(&[10.0, 5.0], &[10.0, 5.0]), 0.0);
        let e = spectrum_error(&[10.0, 5.0], &[10.0, 4.0]);
        assert!((e - 0.1).abs() < 1e-14);
    }
}
