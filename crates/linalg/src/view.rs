//! Zero-copy strided views of [`Matrix`] data.
//!
//! A [`MatView`] is a borrowed, possibly strided window into a matrix's
//! storage: element `(i, j)` lives at `data[i * rs + j * cs]`. Row-major
//! storage is `(rs, cs) = (ld, 1)`; its transpose is `(1, ld)`; a
//! contiguous block of a larger matrix is `(parent_cols, 1)`. Views are
//! `Copy` and cost nothing to construct, so the hot kernels in
//! [`crate::gemm`] and [`crate::qr`] can consume sub-blocks, columns and
//! transposes without materializing them. Like [`Matrix`], views are
//! generic over the sealed [`Scalar`] element type with `f64` as the
//! default, so pre-generic call sites read unchanged.
//!
//! ## Aliasing contract
//!
//! `_into` kernels take inputs as `MatView` (shared borrows) and outputs
//! as `&mut Matrix`. The borrow checker therefore rejects any call where
//! an input view and the output alias the same matrix — overlap is
//! *statically* impossible from safe code, and no runtime aliasing check
//! is needed. [`MatViewMut`] is likewise an exclusive borrow, so it can
//! never coexist with a view of the same data.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A borrowed, read-only, strided matrix view. Element `(i, j)` is
/// `data[i * rs + j * cs]`.
pub struct MatView<'a, T: Scalar = f64> {
    pub(crate) data: &'a [T],
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) rs: usize,
    pub(crate) cs: usize,
}

// Manual impls: derived Clone/Copy would require `T: Clone`/`T: Copy`
// bounds restated at every use site of the default parameter.
impl<T: Scalar> Clone for MatView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for MatView<'_, T> {}

impl<'a, T: Scalar> MatView<'a, T> {
    /// Build a view from raw parts. Panics if any addressable element
    /// would fall outside `data`.
    pub fn from_parts(data: &'a [T], rows: usize, cols: usize, rs: usize, cs: usize) -> Self {
        if rows > 0 && cols > 0 {
            let last = (rows - 1) * rs + (cols - 1) * cs;
            assert!(
                last < data.len(),
                "view exceeds backing slice: last index {last} >= len {}",
                data.len()
            );
        }
        Self { data, rows, cols, rs, cs }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element `(i, j)` (debug-checked bounds via the slice index).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.data[i * self.rs + j * self.cs]
    }

    /// True when the view's rows are unit-stride and adjacent, i.e. the
    /// elements form one contiguous row-major slice.
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.cs == 1 && self.rs == self.cols
    }

    /// The backing slice of a contiguous view. Panics otherwise.
    pub fn contiguous_slice(&self) -> &'a [T] {
        assert!(self.is_contiguous(), "contiguous_slice on a strided view");
        &self.data[..self.rows * self.cols]
    }

    /// The transposed view — free: just swaps the strides.
    #[inline]
    pub fn transposed(self) -> MatView<'a, T> {
        MatView { data: self.data, rows: self.cols, cols: self.rows, rs: self.cs, cs: self.rs }
    }

    /// Sub-block `[r0, r1) x [c0, c1)` of this view (still zero-copy).
    pub fn block(self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatView<'a, T> {
        assert!(r0 <= r1 && r1 <= self.rows, "row range {r0}..{r1} out of 0..{}", self.rows);
        assert!(c0 <= c1 && c1 <= self.cols, "col range {c0}..{c1} out of 0..{}", self.cols);
        MatView {
            data: &self.data[r0 * self.rs + c0 * self.cs..],
            rows: r1 - r0,
            cols: c1 - c0,
            rs: self.rs,
            cs: self.cs,
        }
    }

    /// Column `j` as a `rows x 1` view.
    pub fn col(self, j: usize) -> MatView<'a, T> {
        self.block(0, self.rows, j, j + 1)
    }

    /// Copy the viewed elements into a fresh owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        copy_view_into(*self, &mut out);
        out
    }
}

/// A borrowed, exclusive, strided matrix view.
pub struct MatViewMut<'a, T: Scalar = f64> {
    pub(crate) data: &'a mut [T],
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) rs: usize,
    pub(crate) cs: usize,
}

impl<T: Scalar> MatViewMut<'_, T> {
    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.data[i * self.rs + j * self.cs]
    }

    /// Mutable element `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        &mut self.data[i * self.rs + j * self.cs]
    }

    /// Shared re-borrow of this view.
    pub fn as_view(&self) -> MatView<'_, T> {
        MatView { data: self.data, rows: self.rows, cols: self.cols, rs: self.rs, cs: self.cs }
    }

    /// Overwrite every element from `src` (shapes must match).
    pub fn copy_from(&mut self, src: MatView<'_, T>) {
        assert_eq!((self.rows, self.cols), (src.rows, src.cols), "copy_from: shape mismatch");
        for i in 0..self.rows {
            let dst_off = i * self.rs;
            if self.cs == 1 && src.cs == 1 {
                let s = &src.data[i * src.rs..i * src.rs + self.cols];
                self.data[dst_off..dst_off + self.cols].copy_from_slice(s);
            } else {
                for j in 0..self.cols {
                    self.data[dst_off + j * self.cs] = src.at(i, j);
                }
            }
        }
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: T) {
        for i in 0..self.rows {
            let off = i * self.rs;
            if self.cs == 1 {
                self.data[off..off + self.cols].fill(v);
            } else {
                for j in 0..self.cols {
                    self.data[off + j * self.cs] = v;
                }
            }
        }
    }
}

/// Copy `src` into `dst`, reshaping `dst` to match (no allocation when
/// `dst`'s buffer is already large enough).
pub(crate) fn copy_view_into<T: Scalar>(src: MatView<'_, T>, dst: &mut Matrix<T>) {
    dst.reshape_for_overwrite(src.rows, src.cols);
    for i in 0..src.rows {
        let row = dst.row_mut(i);
        if src.cs == 1 {
            row.copy_from_slice(&src.data[i * src.rs..i * src.rs + src.cols]);
        } else {
            for (j, out) in row.iter_mut().enumerate() {
                *out = src.at(i, j);
            }
        }
    }
}

impl<T: Scalar> Matrix<T> {
    /// Zero-copy view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatView<'_, T> {
        MatView {
            data: self.as_slice(),
            rows: self.rows(),
            cols: self.cols(),
            rs: self.cols(),
            cs: 1,
        }
    }

    /// Zero-copy exclusive view of the whole matrix.
    pub fn view_mut(&mut self) -> MatViewMut<'_, T> {
        let (rows, cols) = self.shape();
        MatViewMut { data: self.as_mut_slice(), rows, cols, rs: cols, cs: 1 }
    }

    /// Zero-copy view of the sub-block `[r0, r1) x [c0, c1)` — the
    /// non-allocating sibling of [`Matrix::submatrix`].
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatView<'_, T> {
        self.view().block(r0, r1, c0, c1)
    }

    /// Zero-copy exclusive view of the sub-block `[r0, r1) x [c0, c1)`.
    /// The blocked QR/bidiagonalization kernels use this to hand a
    /// trailing-matrix region to the accumulating GEMM entry points.
    pub fn block_mut(&mut self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatViewMut<'_, T> {
        let (rows, cols) = self.shape();
        assert!(r0 <= r1 && r1 <= rows, "row range {r0}..{r1} out of 0..{rows}");
        assert!(c0 <= c1 && c1 <= cols, "col range {c0}..{c1} out of 0..{cols}");
        let data = if r1 > r0 && c1 > c0 {
            &mut self.as_mut_slice()[r0 * cols + c0..]
        } else {
            &mut [][..]
        };
        MatViewMut { data, rows: r1 - r0, cols: c1 - c0, rs: cols, cs: 1 }
    }

    /// Zero-copy `rows x 1` view of column `j` — the non-allocating
    /// sibling of [`Matrix::col`].
    pub fn col_view(&self, j: usize) -> MatView<'_, T> {
        assert!(j < self.cols(), "column index {j} out of bounds for {} cols", self.cols());
        self.view().col(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn whole_view_round_trips() {
        let m = sample(4, 7);
        let v = m.view();
        assert!(v.is_contiguous());
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn transposed_view_matches_transpose() {
        let m = sample(5, 3);
        assert_eq!(m.view().transposed().to_matrix(), m.transpose());
    }

    #[test]
    fn block_view_matches_submatrix() {
        let m = sample(6, 8);
        let v = m.block(1, 5, 2, 7);
        assert!(!v.is_contiguous());
        assert_eq!(v.to_matrix(), m.submatrix(1, 5, 2, 7));
        // A block of a block.
        assert_eq!(v.block(1, 3, 0, 2).to_matrix(), m.submatrix(2, 4, 2, 4));
    }

    #[test]
    fn col_view_matches_col() {
        let m = sample(5, 4);
        let v = m.col_view(2);
        assert_eq!(v.shape(), (5, 1));
        for (i, x) in m.col(2).iter().enumerate() {
            assert_eq!(v.at(i, 0), *x);
        }
    }

    #[test]
    fn mut_view_copy_and_fill() {
        let src = sample(3, 3);
        let mut dst = Matrix::zeros(5, 5);
        {
            let w = dst.view_mut();
            // Target the interior 3x3 block.
            let mut blk = MatViewMut { data: &mut w.data[5 + 1..], rows: 3, cols: 3, rs: 5, cs: 1 };
            blk.copy_from(src.view());
        }
        assert_eq!(dst.block(1, 4, 1, 4).to_matrix(), src);
        let mut z = Matrix::zeros(2, 2);
        z.view_mut().fill(7.0);
        assert_eq!(z, Matrix::filled(2, 2, 7.0));
    }

    #[test]
    fn f32_views_are_strided_too() {
        let m = Matrix::<f32>::from_fn(6, 8, |i, j| (i * 100 + j) as f32);
        assert_eq!(m.block(1, 5, 2, 7).to_matrix(), m.submatrix(1, 5, 2, 7));
        assert_eq!(m.view().transposed().to_matrix(), m.transpose());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_block_panics() {
        let m = sample(3, 3);
        let _ = m.block(0, 4, 0, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds backing slice")]
    fn from_parts_bounds_checked() {
        let data = [0.0; 5];
        let _ = MatView::<f64>::from_parts(&data, 2, 3, 3, 1);
    }
}
