//! Reusable scratch buffers for the streaming hot loops.
//!
//! A [`Workspace`] is a small free-list of `Vec<f64>` buffers. Kernels
//! that need temporaries [`take`](Workspace::take) a matrix of the shape
//! they want and [`give`](Workspace::give) it back when done; after the
//! first pass through a loop with stable shapes every `take` is served
//! from the pool and performs **zero heap allocation**. The streaming
//! drivers in `psvd-core` hold one workspace per instance, so a
//! steady-state update reuses the same few buffers forever.
//!
//! The per-instance counters ([`Workspace::stats`]) make the reuse
//! observable: `misses` and `fresh_bytes` stop growing once the pool is
//! warm, which is exactly what `tests/props_views.rs` asserts for a
//! 50-batch streaming run, and what `tests/props_qr_blocked.rs` asserts
//! for the blocked compact-WY QR, whose panel buffers (`Y`, `S`, `T`,
//! the GEMM temporaries) all cycle through the same pool.

use crate::matrix::{alloc_stats, Matrix};

/// Allocation-behavior counters for one [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total `take` calls.
    pub takes: u64,
    /// `take` calls that could not be served from the pool and had to
    /// allocate a fresh buffer.
    pub misses: u64,
    /// Bytes freshly allocated by missing `take`s.
    pub fresh_bytes: u64,
}

/// A free-list scratch arena handing out [`Matrix`] buffers for reuse.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// An empty workspace (first takes will allocate, later ones reuse).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a `rows x cols` zeroed matrix, reusing a pooled buffer when
    /// one with enough capacity exists (best fit: the smallest adequate
    /// buffer is chosen, deterministically).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        self.stats.takes += 1;
        let n = rows * cols;
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= n)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i);
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => {
                self.stats.misses += 1;
                self.stats.fresh_bytes += (n * std::mem::size_of::<f64>()) as u64;
                alloc_stats::record(n);
                Vec::with_capacity(n)
            }
        };
        buf.clear();
        buf.resize(n, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Return a matrix's buffer to the pool for future `take`s.
    pub fn give(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Allocation counters since construction (or the last
    /// [`reset_stats`](Workspace::reset_stats)).
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Zero the counters, keeping the pooled buffers.
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_take_reuses_buffer() {
        let mut ws = Workspace::new();
        let a = ws.take(4, 5);
        assert_eq!(a.shape(), (4, 5));
        ws.give(a);
        let b = ws.take(5, 4); // same element count, different shape
        assert_eq!(b.shape(), (5, 4));
        let s = ws.stats();
        assert_eq!(s.takes, 2);
        assert_eq!(s.misses, 1, "second take must reuse the pooled buffer");
        ws.give(b);
    }

    #[test]
    fn taken_matrices_are_zeroed() {
        let mut ws = Workspace::new();
        let mut a = ws.take(3, 3);
        a[(1, 1)] = 9.0;
        ws.give(a);
        let b = ws.take(3, 3);
        assert_eq!(b, Matrix::zeros(3, 3));
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(10, 10);
        let small = ws.take(2, 2);
        ws.give(big);
        ws.give(small);
        let c = ws.take(2, 2);
        assert_eq!(ws.pooled(), 1, "small buffer should be picked, big one left");
        let remaining_cap = {
            let d = ws.take(10, 10); // must still fit in the big buffer
            let misses = ws.stats().misses;
            ws.give(d);
            misses
        };
        assert_eq!(remaining_cap, 2, "only the two initial takes miss");
        ws.give(c);
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let a = ws.take(8, 6);
            let b = ws.take(6, 6);
            ws.give(a);
            ws.give(b);
        }
        ws.reset_stats();
        for _ in 0..10 {
            let a = ws.take(8, 6);
            let b = ws.take(6, 6);
            ws.give(a);
            ws.give(b);
        }
        let s = ws.stats();
        assert_eq!(s.takes, 20);
        assert_eq!(s.misses, 0);
        assert_eq!(s.fresh_bytes, 0);
    }
}
