//! Reusable scratch buffers for the streaming hot loops.
//!
//! A [`Workspace`] is a small free-list arena of buffers. Kernels that
//! need temporaries [`take`](Workspace::take) a matrix of the shape they
//! want and [`give`](Workspace::give) it back when done; after the first
//! pass through a loop with stable shapes every `take` is served from
//! the pool and performs **zero heap allocation**. The streaming drivers
//! in `psvd-core` hold one workspace per instance, so a steady-state
//! update reuses the same few buffers forever.
//!
//! One workspace serves **both** [`Scalar`] dtypes: it keeps a separate
//! free-list per element type (`f64` and `f32` buffers are never
//! interchangeable — capacities are in elements and the bit patterns
//! differ), dispatched through [`Scalar::workspace_pool`], while the
//! counters are shared and **byte-based**. A session that mixes f32
//! sketch buffers with f64 factor buffers (the mixed-precision pipeline)
//! therefore reports `fresh_bytes` honestly: an f32 miss charges half
//! the bytes of an equally-shaped f64 miss.
//!
//! The per-instance counters ([`Workspace::stats`]) make the reuse
//! observable: `misses` and `fresh_bytes` stop growing once the pool is
//! warm, which is exactly what `tests/props_views.rs` asserts for a
//! 50-batch streaming run, and what `tests/props_qr_blocked.rs` asserts
//! for the blocked compact-WY QR, whose panel buffers (`Y`, `S`, `T`,
//! the GEMM temporaries) all cycle through the same pool.

use crate::matrix::{alloc_stats, Matrix};
use crate::scalar::Scalar;

/// Allocation-behavior counters for one [`Workspace`] (shared across
/// both element-type pools; byte counts are dtype-aware).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total `take` calls (any dtype).
    pub takes: u64,
    /// `take` calls that could not be served from the pool and had to
    /// allocate a fresh buffer.
    pub misses: u64,
    /// Bytes freshly allocated by missing `take`s
    /// (`elements * size_of::<T>()` for the missing dtype).
    pub fresh_bytes: u64,
}

/// A free-list scratch arena handing out [`Matrix`] buffers for reuse,
/// with one pool per [`Scalar`] dtype.
#[derive(Default)]
pub struct Workspace {
    pool_f64: Vec<Vec<f64>>,
    pool_f32: Vec<Vec<f32>>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// An empty workspace (first takes will allocate, later ones reuse).
    pub fn new() -> Self {
        Self::default()
    }

    /// The `f64` free-list (reached generically via
    /// [`Scalar::workspace_pool`]).
    pub(crate) fn pool_f64(&mut self) -> &mut Vec<Vec<f64>> {
        &mut self.pool_f64
    }

    /// The `f32` free-list.
    pub(crate) fn pool_f32(&mut self) -> &mut Vec<Vec<f32>> {
        &mut self.pool_f32
    }

    /// Take a `rows x cols` zeroed matrix of dtype `T` (inferred from
    /// the use site; `f64` everywhere pre-generic code ran), reusing a
    /// pooled buffer of that dtype when one with enough capacity exists
    /// (best fit: the smallest adequate buffer is chosen,
    /// deterministically).
    pub fn take<T: Scalar>(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        self.stats.takes += 1;
        let n = rows * cols;
        let pool = T::workspace_pool(self);
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= n)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i);
        let reused = best.map(|i| pool.swap_remove(i));
        let mut buf = match reused {
            Some(b) => b,
            None => {
                self.stats.misses += 1;
                self.stats.fresh_bytes += (n * std::mem::size_of::<T>()) as u64;
                alloc_stats::record::<T>(n);
                Vec::with_capacity(n)
            }
        };
        buf.clear();
        buf.resize(n, T::ZERO);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Return a matrix's buffer to its dtype's pool for future `take`s.
    pub fn give<T: Scalar>(&mut self, m: Matrix<T>) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            T::workspace_pool(self).push(buf);
        }
    }

    /// Buffers currently sitting in the pools (both dtypes).
    pub fn pooled(&self) -> usize {
        self.pool_f64.len() + self.pool_f32.len()
    }

    /// Allocation counters since construction (or the last
    /// [`reset_stats`](Workspace::reset_stats)).
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Zero the counters, keeping the pooled buffers.
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_take_reuses_buffer() {
        let mut ws = Workspace::new();
        let a = ws.take::<f64>(4, 5);
        assert_eq!(a.shape(), (4, 5));
        ws.give(a);
        let b = ws.take::<f64>(5, 4); // same element count, different shape
        assert_eq!(b.shape(), (5, 4));
        let s = ws.stats();
        assert_eq!(s.takes, 2);
        assert_eq!(s.misses, 1, "second take must reuse the pooled buffer");
        ws.give(b);
    }

    #[test]
    fn taken_matrices_are_zeroed() {
        let mut ws = Workspace::new();
        let mut a = ws.take::<f64>(3, 3);
        a[(1, 1)] = 9.0;
        ws.give(a);
        let b = ws.take::<f64>(3, 3);
        assert_eq!(b, Matrix::zeros(3, 3));
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take::<f64>(10, 10);
        let small = ws.take::<f64>(2, 2);
        ws.give(big);
        ws.give(small);
        let c = ws.take::<f64>(2, 2);
        assert_eq!(ws.pooled(), 1, "small buffer should be picked, big one left");
        let remaining_cap = {
            let d = ws.take::<f64>(10, 10); // must still fit in the big buffer
            let misses = ws.stats().misses;
            ws.give(d);
            misses
        };
        assert_eq!(remaining_cap, 2, "only the two initial takes miss");
        ws.give(c);
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let a = ws.take::<f64>(8, 6);
            let b = ws.take::<f64>(6, 6);
            ws.give(a);
            ws.give(b);
        }
        ws.reset_stats();
        for _ in 0..10 {
            let a = ws.take::<f64>(8, 6);
            let b = ws.take::<f64>(6, 6);
            ws.give(a);
            ws.give(b);
        }
        let s = ws.stats();
        assert_eq!(s.takes, 20);
        assert_eq!(s.misses, 0);
        assert_eq!(s.fresh_bytes, 0);
    }

    #[test]
    fn pools_are_segregated_by_dtype() {
        // An f32 buffer must never be handed out to an f64 take (and
        // vice versa), no matter how large its element capacity is.
        let mut ws = Workspace::new();
        let wide = ws.take::<f32>(16, 16);
        ws.give(wide);
        let d = ws.take::<f64>(2, 2);
        assert_eq!(ws.stats().misses, 2, "f64 take must not reuse the f32 buffer");
        ws.give(d);
        let f = ws.take::<f32>(4, 4);
        assert_eq!(ws.stats().misses, 2, "f32 take reuses the f32 buffer");
        ws.give(f);
    }

    #[test]
    fn fresh_bytes_are_dtype_aware() {
        let mut ws = Workspace::new();
        let a = ws.take::<f64>(8, 8);
        let b = ws.take::<f32>(8, 8);
        let s = ws.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.fresh_bytes, 64 * 8 + 64 * 4, "f32 miss charges half the f64 bytes");
        ws.give(a);
        ws.give(b);
    }

    #[test]
    fn mixed_precision_steady_state_has_no_misses() {
        // Satellite: a session mixing f32 sketch buffers with f64
        // factor buffers still reaches a zero-miss steady state.
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let sketch = ws.take::<f32>(32, 8);
            let factor = ws.take::<f64>(32, 8);
            ws.give(sketch);
            ws.give(factor);
        }
        ws.reset_stats();
        for _ in 0..10 {
            let sketch = ws.take::<f32>(32, 8);
            let factor = ws.take::<f64>(32, 8);
            ws.give(sketch);
            ws.give(factor);
        }
        let s = ws.stats();
        assert_eq!(s.takes, 20);
        assert_eq!(s.misses, 0);
        assert_eq!(s.fresh_bytes, 0);
    }
}
