//! Compact-WY accumulation of Householder reflector panels.
//!
//! A run of reflectors `H_k = I − τ_k v_k v_kᵀ` composes into the blocked
//! form `H_{k0} ⋯ H_{k0+nb−1} = I − Y T Yᵀ` where column `j` of `Y` is the
//! (unnormalized) vector `v_{k0+j}` with zeros above its pivot row and `T`
//! is `nb x nb` upper triangular (Schreiber & Van Loan). Applying the
//! block to a trailing matrix `C` then costs two big GEMMs plus one small
//! one instead of `nb` rank-1 sweeps:
//!
//! ```text
//! (I − Y T Yᵀ) C  =  C − Y · (T · (Yᵀ C))
//! ```
//!
//! which is exactly the transformation that lets the QR factorization and
//! the Golub–Kahan U/V accumulation run on the packed parallel GEMM
//! engine ([`crate::gemm`]) instead of the level-2 reflector sweeps.
//!
//! ## Determinism
//!
//! Everything here is built from kernels that are bitwise deterministic
//! across thread counts (`gram_into`, the `matmul*_into` family and the
//! accumulating [`matmul_acc_into`]), plus serial `O(nb³)` recurrences, so
//! a blocked factorization at a fixed panel width `nb` produces identical
//! bits for every value of `PSVD_NUM_THREADS`.

use crate::gemm::{gram_into, matmul_acc_into, matmul_into, matmul_tn_into};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::view::MatViewMut;
use crate::workspace::Workspace;

/// Build the upper-triangular `T` factor from `S = YᵀY` and the per-column
/// `τ` values via the forward recurrence
///
/// ```text
/// T[j][j]    = τ_j
/// T[0..j, j] = −τ_j · T[0..j, 0..j] · S[0..j, j]
/// ```
///
/// `τ_j = 0` marks an identity reflector; its row and column of `T` stay
/// zero, so the corresponding `Y` column never contributes. `t` is
/// reshaped to `nb x nb` with an exactly-zero strict lower triangle.
pub(crate) fn build_t<T: Scalar>(s: &Matrix<T>, taus: &[T], t: &mut Matrix<T>) {
    let nb = taus.len();
    debug_assert_eq!(s.shape(), (nb, nb));
    t.reshape_zeroed(nb, nb);
    for j in 0..nb {
        let tau = taus[j];
        t[(j, j)] = tau;
        for i in 0..j {
            let mut acc = T::ZERO;
            for l in i..j {
                acc += t[(i, l)] * s[(l, j)];
            }
            t[(i, j)] = -tau * acc;
        }
    }
}

/// Materialize panel `[k0, k0 + nb)` of a reflector set into `y` and
/// `taus`.
///
/// Row `k` of `vs` holds `v_k` in its first `len + k0 - k` entries (the
/// storage layout of the factorization loops); `vn[k]` holds `‖v_k‖²`,
/// with `0.0` marking an identity reflector. `y` is reshaped to
/// `len x nb`: column `j` carries `v_{k0+j}` below its pivot (row `j`),
/// exact zeros above, and is zeroed entirely for identity reflectors.
/// `taus[j]` becomes `2 / ‖v‖²` (the reflector scaling used throughout
/// this crate) or `0.0`.
pub(crate) fn panel_y<T: Scalar>(
    vs: &Matrix<T>,
    vn: &[T],
    k0: usize,
    nb: usize,
    len: usize,
    y: &mut Matrix<T>,
    taus: &mut [T],
) {
    debug_assert_eq!(taus.len(), nb);
    let two = T::from_f64(2.0);
    for (j, tau) in taus.iter_mut().enumerate() {
        let v2 = vn[k0 + j];
        *tau = if v2 > T::ZERO { two / v2 } else { T::ZERO };
    }
    y.reshape_for_overwrite(len, nb);
    for i in 0..len {
        let row = y.row_mut(i);
        for (j, out) in row.iter_mut().enumerate() {
            *out = if i >= j && vn[k0 + j] > T::ZERO { vs[(k0 + j, i - j)] } else { T::ZERO };
        }
    }
}

/// Apply a compact-WY block to `C` in place:
///
/// * `trans_t = false`: `C ← (I − Y T Yᵀ) C` (Q-accumulation direction);
/// * `trans_t = true`:  `C ← (I − Y Tᵀ Yᵀ) C` (trailing-matrix update,
///   i.e. the transposed block `H_last ⋯ H_first`).
///
/// `tneg` must hold `−T` (negated once by the caller), which turns the
/// subtraction into a pure accumulating GEMM: `C += Y · ((−T)·(Yᵀ C))`.
/// All three products draw their temporaries from `ws`; with warm buffers
/// the call allocates nothing.
pub(crate) fn apply_block_left<T: Scalar>(
    y: &Matrix<T>,
    tneg: &Matrix<T>,
    trans_t: bool,
    mut c: MatViewMut<'_, T>,
    ws: &mut Workspace,
) {
    let (rows, cc) = c.shape();
    let nb = y.cols();
    debug_assert_eq!(y.rows(), rows);
    debug_assert_eq!(tneg.shape(), (nb, nb));
    if rows == 0 || cc == 0 || nb == 0 {
        return;
    }
    let mut w = ws.take(nb, cc);
    matmul_tn_into(y.view(), c.as_view(), &mut w);
    let mut w2 = ws.take(nb, cc);
    if trans_t {
        matmul_tn_into(tneg.view(), w.view(), &mut w2);
    } else {
        matmul_into(tneg.view(), w.view(), &mut w2);
    }
    matmul_acc_into(y.view(), w2.view(), &mut c);
    ws.give(w);
    ws.give(w2);
}

/// Backward accumulation `X ← H_0 H_1 ⋯ H_{count−1} X` in compact-WY
/// panels of width `nb`, where reflector `k` acts on rows `off + k ..` of
/// `x` (`off = 0` for QR / left bidiagonalization reflectors, `off = 1`
/// for the right ones). Panels are processed last-to-first; each panel's
/// `T` is rebuilt from `S = YᵀY` (one level-3 `gram`) rather than stored.
///
/// **Contract:** `x` must start as leading identity columns
/// (`x[i][j] = δ_ij`), the orthogonal-factor-formation shape of every call
/// site. Then during backward accumulation column `j < off + k0` of `x` is
/// still the unit vector `e_j`, supported strictly above panel `k0`'s row
/// range, so every application can be restricted to the trailing columns —
/// roughly halving the flops versus a full-width sweep. (The unblocked
/// reference below has no such restriction and works on arbitrary `x`.)
pub(crate) fn accumulate_reverse<T: Scalar>(
    vs: &Matrix<T>,
    vn: &[T],
    count: usize,
    off: usize,
    nb: usize,
    x: &mut Matrix<T>,
    ws: &mut Workspace,
) {
    if count == 0 {
        return;
    }
    debug_assert!(nb >= 1);
    let (rows, cols) = x.shape();
    let mut y = ws.take(rows - off, nb);
    let mut s = ws.take(nb, nb);
    let mut t = ws.take(nb, nb);
    let mut taubuf = ws.take(1, nb);
    let npanels = count.div_ceil(nb);
    for pi in (0..npanels).rev() {
        let k0 = pi * nb;
        let nbk = nb.min(count - k0);
        let len = rows - off - k0;
        panel_y(vs, vn, k0, nbk, len, &mut y, &mut taubuf.row_mut(0)[..nbk]);
        gram_into(y.view(), &mut s);
        build_t(&s, &taubuf.row(0)[..nbk], &mut t);
        t.scale_mut(-T::ONE);
        let c0 = off + k0;
        if c0 < cols {
            apply_block_left(&y, &t, false, x.block_mut(c0, rows, c0, cols), ws);
        }
    }
    ws.give(y);
    ws.give(s);
    ws.give(t);
    ws.give(taubuf);
}

/// The `nb = 1` reference form of [`accumulate_reverse`]: one reflector at
/// a time, full column width — the exact op sequence of the historical
/// unblocked accumulation loops, kept for small problems where panel
/// assembly overhead dominates.
pub(crate) fn accumulate_reverse_unblocked<T: Scalar>(
    vs: &Matrix<T>,
    vn: &[T],
    count: usize,
    off: usize,
    x: &mut Matrix<T>,
) {
    let (rows, cols) = x.shape();
    for k in (0..count).rev() {
        let vnorm2 = vn[k];
        if vnorm2 == T::ZERO {
            continue;
        }
        let vlen = rows - off - k;
        crate::qr::apply_reflector(
            x.as_mut_slice(),
            cols,
            off + k,
            0,
            cols,
            &vs.row(k)[..vlen],
            vnorm2,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    /// Apply reflectors one at a time (ground truth) to compare against
    /// the WY-block application.
    fn apply_serial(vs: &Matrix, vn: &[f64], k0: usize, nb: usize, c: &Matrix) -> Matrix {
        let mut out = c.clone();
        for j in 0..nb {
            let k = k0 + j;
            if vn[k] == 0.0 {
                continue;
            }
            let vlen = c.rows() - j;
            let v = &vs.row(k)[..vlen];
            for col in 0..out.cols() {
                let mut dot = 0.0;
                for (idx, vi) in v.iter().enumerate() {
                    dot += vi * out[(j + idx, col)];
                }
                let s = 2.0 * dot / vn[k];
                for (idx, vi) in v.iter().enumerate() {
                    out[(j + idx, col)] -= s * vi;
                }
            }
        }
        out
    }

    fn reflector_set(m: usize, count: usize, seed: f64) -> (Matrix, Vec<f64>) {
        let mut vs = Matrix::zeros(count, m);
        let mut vn = vec![0.0; count];
        for (k, norm2) in vn.iter_mut().enumerate() {
            let vlen = m - k;
            let row = &mut vs.row_mut(k)[..vlen];
            for (i, v) in row.iter_mut().enumerate() {
                *v = ((i * 7 + k * 13) as f64 * seed).sin() + if i == 0 { 1.5 } else { 0.0 };
            }
            *norm2 = row.iter().map(|x| x * x).sum();
        }
        (vs, vn)
    }

    #[test]
    fn wy_block_matches_serial_reflectors() {
        let (m, nb) = (23, 5);
        let (vs, vn) = reflector_set(m, nb, 0.37);
        let c = Matrix::from_fn(m, 9, |i, j| ((i * 3 + j * 5) as f64 * 0.21).cos());
        let want = apply_serial(&vs, &vn, 0, nb, &c);

        let mut ws = Workspace::new();
        let mut y = Matrix::zeros(0, 0);
        let mut taus = vec![0.0; nb];
        panel_y(&vs, &vn, 0, nb, m, &mut y, &mut taus);
        let mut s = Matrix::zeros(0, 0);
        gram_into(y.view(), &mut s);
        let mut t = Matrix::zeros(0, 0);
        build_t(&s, &taus, &mut t);
        t.scale_mut(-1.0);
        let mut got = c.clone();
        let rows = got.rows();
        let cols = got.cols();
        // H_last ⋯ H_first C is the trailing-update direction (Tᵀ).
        apply_block_left(&y, &t, true, got.block_mut(0, rows, 0, cols), &mut ws);
        assert!((&got - &want).max_abs() < 1e-12, "WY trailing update diverged");
    }

    #[test]
    fn wy_block_is_orthogonal() {
        // I − Y T Yᵀ must be orthogonal: apply it to the identity and
        // check QᵀQ = I.
        let (m, nb) = (17, 4);
        let (vs, vn) = reflector_set(m, nb, 0.53);
        let mut ws = Workspace::new();
        let mut q = Matrix::identity(m);
        accumulate_reverse(&vs, &vn, nb, 0, nb, &mut q, &mut ws);
        let qtq = crate::gemm::matmul_tn(&q, &q);
        assert!((&qtq - &Matrix::identity(m)).max_abs() < 1e-12);
    }

    #[test]
    fn accumulate_blocked_matches_unblocked() {
        // x starts as the first columns of the identity — the
        // orthogonal-factor-formation shape required by the blocked path's
        // trailing-column restriction.
        let (m, count) = (31, 12);
        let (vs, vn) = reflector_set(m, count, 0.29);
        let ident = |i: usize, j: usize| if i == j { 1.0 } else { 0.0 };
        let base = {
            let mut x = Matrix::from_fn(m, 7, ident);
            accumulate_reverse_unblocked(&vs, &vn, count, 0, &mut x);
            x
        };
        for nb in [1, 3, 5, 12, 16] {
            let mut ws = Workspace::new();
            let mut x = Matrix::from_fn(m, 7, ident);
            accumulate_reverse(&vs, &vn, count, 0, nb, &mut x, &mut ws);
            assert!((&x - &base).max_abs() < 1e-12, "nb = {nb} diverged");
        }
    }

    #[test]
    fn identity_reflectors_are_skipped() {
        let (m, count) = (14, 6);
        let (vs, mut vn) = reflector_set(m, count, 0.41);
        vn[2] = 0.0; // mark reflector 2 as identity
        vn[5] = 0.0;
        let base = {
            let mut x = Matrix::identity(m);
            accumulate_reverse_unblocked(&vs, &vn, count, 0, &mut x);
            x
        };
        let mut ws = Workspace::new();
        let mut x = Matrix::identity(m);
        accumulate_reverse(&vs, &vn, count, 0, 3, &mut x, &mut ws);
        assert!((&x - &base).max_abs() < 1e-12);
        // Still orthogonal despite the holes.
        let xtx = crate::gemm::matmul_tn(&x, &x);
        assert!((&xtx - &Matrix::identity(m)).max_abs() < 1e-12);
    }

    #[test]
    fn offset_reflectors_match_unblocked() {
        // off = 1: the right-reflector layout of the bidiagonalization.
        let n = 19;
        let count = n - 2;
        let (vs, vn) = reflector_set(n - 1, count, 0.61);
        let base = {
            let mut x = Matrix::identity(n);
            accumulate_reverse_unblocked(&vs, &vn, count, 1, &mut x);
            x
        };
        let mut ws = Workspace::new();
        let mut x = Matrix::identity(n);
        accumulate_reverse(&vs, &vn, count, 1, 4, &mut x, &mut ws);
        assert!((&x - &base).max_abs() < 1e-12);
    }

    #[test]
    fn build_t_two_reflector_closed_form() {
        // For two reflectors, T = [[τ1, −τ1 τ2 v1ᵀv2], [0, τ2]].
        let (vs, vn) = reflector_set(6, 2, 0.9);
        let mut y = Matrix::zeros(0, 0);
        let mut taus = vec![0.0; 2];
        panel_y(&vs, &vn, 0, 2, 6, &mut y, &mut taus);
        let mut s = Matrix::zeros(0, 0);
        gram_into(y.view(), &mut s);
        let mut t = Matrix::zeros(0, 0);
        build_t(&s, &taus, &mut t);
        let v1v2: f64 = (0..6).map(|i| y[(i, 0)] * y[(i, 1)]).sum();
        assert!((t[(0, 0)] - taus[0]).abs() < 1e-15);
        assert!((t[(1, 1)] - taus[1]).abs() < 1e-15);
        assert_eq!(t[(1, 0)], 0.0);
        assert!((t[(0, 1)] + taus[0] * taus[1] * v1v2).abs() < 1e-13);
        // And the expansion I − Y T Yᵀ equals H1 H2.
        let h = |j: usize| {
            let mut m = Matrix::<f64>::identity(6);
            for r in 0..6 {
                for c in 0..6 {
                    m[(r, c)] -= taus[j] * y[(r, j)] * y[(c, j)];
                }
            }
            m
        };
        let prod = matmul(&h(0), &h(1));
        let yt = matmul(&y, &t);
        let mut wy = Matrix::identity(6);
        for r in 0..6 {
            for c in 0..6 {
                let mut acc = 0.0;
                for l in 0..2 {
                    acc += yt[(r, l)] * y[(c, l)];
                }
                wy[(r, c)] -= acc;
            }
        }
        assert!((&prod - &wy).max_abs() < 1e-13);
    }
}
