//! Per-tenant chaos schedules over the comm layer's fault injector.
//!
//! One master seed drives the whole soak: every `(tenant, round)` gets an
//! independent [`FaultPlan`] on a sub-seed mixed via
//! [`FaultPlan::derive_seed`], so a chaos run replays identically — the
//! same sessions see the same drops, corruptions and deaths at the same
//! rounds, regardless of worker scheduling or thread count. A failing
//! session is reproduced from `(master seed, tenant name, round)` alone.

use psvd_comm::FaultPlan;

/// A deterministic fault profile applied to every round of a session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosSpec {
    /// Master seed; sub-seeded per `(tenant, round)`.
    pub seed: u64,
    /// Probability a send's payload is dropped (first attempt).
    pub drop_prob: f64,
    /// Probability a send is delayed for reordering.
    pub delay_prob: f64,
    /// Operations a delayed send is held back for.
    pub delay_ops: u64,
    /// Probability a receive sees a mangled payload.
    pub corrupt_prob: f64,
    /// Schedule a rank death every `n`-th round (`0` = never). Deaths are
    /// permanent for the round: the session replays it cleanly from its
    /// checkpoints, which is exactly the recovery path under test.
    pub death_every: u64,
}

impl ChaosSpec {
    /// A fault-free profile on `seed`; compose with the builders.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Builder: drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Builder: delay probability and hold-back window.
    pub fn with_delay_prob(mut self, p: f64, ops: u64) -> Self {
        self.delay_prob = p;
        self.delay_ops = ops;
        self
    }

    /// Builder: corruption probability.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Builder: kill a (seed-chosen) rank every `n`-th round.
    pub fn with_death_every(mut self, n: u64) -> Self {
        self.death_every = n;
        self
    }

    /// The stable stream id of a tenant (FNV-1a over the name).
    pub fn tenant_stream(tenant: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tenant.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The fault plan for one `(tenant, round)` of a `ranks`-wide session.
    pub fn plan_for(&self, tenant: &str, round: u64, ranks: usize) -> FaultPlan {
        let stream = Self::tenant_stream(tenant);
        let mut plan = FaultPlan::new(FaultPlan::derive_seed(self.seed, stream, round))
            .with_drop_prob(self.drop_prob)
            .with_delay_prob(self.delay_prob, self.delay_ops)
            .with_corrupt_prob(self.corrupt_prob);
        if self.death_every > 0 && ranks >= 2 && (round + 1).is_multiple_of(self.death_every) {
            // Victim and collective round are themselves seed-derived, so
            // deaths sweep over ranks and phases across the soak.
            let h = FaultPlan::derive_seed(self.seed ^ 0xDEAD_DEAD_DEAD_DEAD, stream, round);
            plan = plan.with_death(h as usize % ranks, 1 + (h >> 32) % 3);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_distinct() {
        let spec = ChaosSpec::new(42).with_drop_prob(0.5).with_death_every(3);
        let a = spec.plan_for("tenant-a", 0, 4);
        let b = spec.plan_for("tenant-a", 0, 4);
        assert_eq!(a.seed(), b.seed(), "same coordinates, same plan");
        assert_ne!(a.seed(), spec.plan_for("tenant-b", 0, 4).seed(), "tenants differ");
        assert_ne!(a.seed(), spec.plan_for("tenant-a", 1, 4).seed(), "rounds differ");
    }

    #[test]
    fn deaths_fire_on_schedule() {
        let spec = ChaosSpec::new(7).with_death_every(3);
        for round in 0..12 {
            let plan = spec.plan_for("t", round, 4);
            let due = (round + 1) % 3 == 0;
            assert_eq!(!plan.deaths().is_empty(), due, "round {round}");
            for d in plan.deaths() {
                assert!(d.rank < 4);
                assert!((1..=3).contains(&d.at_round));
            }
        }
        // Single-rank sessions never schedule deaths.
        assert!(spec.plan_for("t", 2, 1).deaths().is_empty());
    }
}
