//! # psvd-serve
//!
//! SVD-as-a-service: a multi-tenant streaming server hosting many
//! concurrent [`psvd_core::ParallelStreamingSvd`] sessions — the front
//! door that turns the library into a long-lived daemon.
//!
//! Architecture (see DESIGN.md, "Service architecture"):
//!
//! - **Sessions** ([`session`]): a tenant's durable state is its set of
//!   per-rank [`psvd_core::SvdCheckpoint`]s. Each update *round* restores
//!   ephemeral drivers over a stack-local communicator (a
//!   [`psvd_comm::SelfComm`] for single-rank sessions, a fresh
//!   [`psvd_comm::World`] otherwise), streams the round's batches through
//!   the drivers' untouched `try_fit_source` path, and commits the new
//!   checkpoint set — or discards everything and replays the round on a
//!   clean world if any rank failed, so crashes recover bitwise from the
//!   last committed checkpoints.
//! - **Ingestion queues** ([`queue`]): arrival chunks of any width are
//!   coalesced into the session's canonical batch width before they reach
//!   a driver, so the committed model depends only on the column stream,
//!   never on how clients happened to chop it up.
//! - **Server** ([`server`]): a tenant-keyed session map, a worker pool
//!   draining the queues one fair round at a time, checkpoint-backed
//!   eviction of idle sessions with rehydration on the next touch, and
//!   non-blocking query endpoints answering from an [`std::sync::Arc`]'d
//!   immutable [`SessionModel`] snapshot — queries never wait on any
//!   tenant's update computation.
//! - **Chaos** ([`chaos`]): [`psvd_comm::FaultComm`] wired in as the
//!   fault layer, with per-`(tenant, round)` schedules derived from one
//!   master seed via [`psvd_comm::FaultPlan::derive_seed`].
//!
//! ```
//! use psvd_serve::{ServeConfig, SessionSpec, SvdServer};
//! use psvd_linalg::Matrix;
//!
//! let server = SvdServer::new(ServeConfig::default());
//! server.open("tenant-a", SessionSpec::new(2, 24).with_batch(4)).unwrap();
//! let data = Matrix::from_fn(24, 8, |i, j| ((i * 7 + j * 3) as f64 * 0.1).sin());
//! server.submit("tenant-a", data).unwrap();
//! server.drain();
//! let sigma = server.singular_values("tenant-a").unwrap();
//! assert_eq!(sigma.len(), 2);
//! server.shutdown();
//! ```

pub mod chaos;
pub mod queue;
pub mod server;
pub mod session;
pub mod stats;

pub use chaos::ChaosSpec;
pub use queue::{BatchQueue, CoalescedBatches, QueueFull};
pub use server::{ServeConfig, ServeError, SvdServer};
pub use session::{RoundReport, SessionModel, SessionSpec, SessionState};
pub use stats::{LatencyHistogram, ServeStats, StatsSnapshot};
