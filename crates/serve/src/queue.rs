//! Per-session ingestion queues.
//!
//! Clients submit snapshot chunks of whatever width their producers emit
//! (a single column from a live probe, a panel from a batch uploader).
//! The queue re-cuts that arrival stream into the session's canonical
//! batch width before anything reaches a driver, which makes the
//! committed factorization a pure function of the *column stream*: two
//! clients submitting the same columns chopped differently converge to
//! bitwise-identical models (pinned by `tests/props_serve.rs`).
//!
//! Rounds are handed to the workers as [`CoalescedBatches`], whose
//! [`psvd_data::SnapshotSource`] adapters feed the drivers' untouched
//! `try_fit_source` ingestion path — the whole point of the pull-based
//! source contract.

use std::collections::VecDeque;
use std::io;

use psvd_data::partition::block_range;
use psvd_data::SnapshotSource;
use psvd_linalg::Matrix;

/// A submit was rejected because the session's queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// Snapshots already pending.
    pub pending: usize,
    /// The configured depth (`PSVD_SERVE_QUEUE_DEPTH`).
    pub depth: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingestion queue full ({} pending snapshots, depth {})", self.pending, self.depth)
    }
}

impl std::error::Error for QueueFull {}

/// Arrival chunks in, canonical batches out.
///
/// Backpressure is counted in *snapshots* (columns): once `depth` columns
/// are pending, further submits are rejected with [`QueueFull`] until a
/// worker drains a round.
#[derive(Debug)]
pub struct BatchQueue {
    rows: usize,
    batch: usize,
    depth: usize,
    pending: VecDeque<Matrix>,
    /// Columns of `pending[0]` already consumed by a previous round.
    front_col: usize,
    pending_cols: usize,
    accepted: u64,
}

impl BatchQueue {
    /// A queue for `rows`-row snapshots, re-cut to `batch`-column rounds,
    /// holding at most `depth` pending snapshots.
    pub fn new(rows: usize, batch: usize, depth: usize) -> Self {
        assert!(rows > 0, "sessions need at least one row");
        assert!(batch > 0, "batch size must be positive");
        assert!(depth >= batch, "queue depth {depth} cannot hold one batch of {batch}");
        Self {
            rows,
            batch,
            depth,
            pending: VecDeque::new(),
            front_col: 0,
            pending_cols: 0,
            accepted: 0,
        }
    }

    /// Snapshots currently pending.
    pub fn pending_snapshots(&self) -> usize {
        self.pending_cols
    }

    /// Snapshots accepted over the queue's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Full canonical batches ready to be cut.
    pub fn ready_batches(&self) -> usize {
        self.pending_cols / self.batch
    }

    /// Enqueue an arrival chunk (`rows x w`, any `w >= 1`).
    pub fn push(&mut self, chunk: Matrix) -> Result<(), QueueFull> {
        assert_eq!(
            chunk.rows(),
            self.rows,
            "chunk has {} rows, session has {}",
            chunk.rows(),
            self.rows
        );
        assert!(chunk.cols() > 0, "empty snapshot chunk");
        if self.pending_cols + chunk.cols() > self.depth {
            return Err(QueueFull { pending: self.pending_cols, depth: self.depth });
        }
        self.pending_cols += chunk.cols();
        self.accepted += chunk.cols() as u64;
        self.pending.push_back(chunk);
        Ok(())
    }

    /// Cut up to `max_batches` *full* canonical batches for one round;
    /// `None` if no full batch is pending. A trailing runt (fewer than
    /// `batch` columns) stays queued until [`BatchQueue::take_flush`].
    pub fn take_round(&mut self, max_batches: usize) -> Option<CoalescedBatches> {
        let n = self.ready_batches().min(max_batches.max(1));
        if n == 0 {
            return None;
        }
        Some(self.cut(n, false))
    }

    /// Cut everything pending — full batches plus the trailing runt — for
    /// an end-of-stream flush. `None` if the queue is empty.
    pub fn take_flush(&mut self, max_batches: usize) -> Option<CoalescedBatches> {
        if self.pending_cols == 0 {
            return None;
        }
        let full = self.ready_batches();
        let runt = usize::from(!self.pending_cols.is_multiple_of(self.batch));
        Some(self.cut((full + runt).min(max_batches.max(1)), true))
    }

    /// Assemble `n` batches (the last possibly a runt iff `flush`).
    fn cut(&mut self, n: usize, flush: bool) -> CoalescedBatches {
        let mut batches = Vec::with_capacity(n);
        for _ in 0..n {
            let width = if flush { self.batch.min(self.pending_cols) } else { self.batch };
            if width == 0 {
                break;
            }
            let mut dst = Matrix::zeros(self.rows, width);
            for jj in 0..width {
                let chunk = &self.pending[0];
                for i in 0..self.rows {
                    dst.row_mut(i)[jj] = chunk.row(i)[self.front_col];
                }
                self.front_col += 1;
                self.pending_cols -= 1;
                if self.front_col == chunk.cols() {
                    self.pending.pop_front();
                    self.front_col = 0;
                }
            }
            batches.push(dst);
        }
        CoalescedBatches { rows: self.rows, batches }
    }
}

/// One round's worth of canonical batches, cut from a [`BatchQueue`] (or
/// built directly for tests/twin replays via
/// [`CoalescedBatches::from_batches`]).
#[derive(Clone, Debug)]
pub struct CoalescedBatches {
    rows: usize,
    batches: Vec<Matrix>,
}

impl CoalescedBatches {
    /// Wrap pre-cut batches (all `rows` tall).
    pub fn from_batches(batches: Vec<Matrix>) -> Self {
        assert!(!batches.is_empty(), "a round needs at least one batch");
        let rows = batches[0].rows();
        assert!(batches.iter().all(|b| b.rows() == rows), "mixed-height batches");
        Self { rows, batches }
    }

    /// Snapshot rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Batches in this round.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when the round carries no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total snapshots across the round.
    pub fn snapshots(&self) -> usize {
        self.batches.iter().map(|b| b.cols()).sum()
    }

    /// The batches themselves (rank 0..rows view).
    pub fn batches(&self) -> &[Matrix] {
        &self.batches
    }

    /// A [`SnapshotSource`] over `rank`'s row block of every batch — what
    /// each rank of a session world hands to `try_fit_source`, mirroring
    /// how distributed drivers pull their own row hyperslab.
    pub fn rank_source(&self, n_ranks: usize, rank: usize) -> RankSource<'_> {
        let (r0, r1) = block_range(self.rows, n_ranks, rank);
        RankSource { batches: &self.batches, next: 0, r0, r1 }
    }
}

/// [`SnapshotSource`] serving one rank's row block of a round's batches.
pub struct RankSource<'a> {
    batches: &'a [Matrix],
    next: usize,
    r0: usize,
    r1: usize,
}

impl SnapshotSource<f64> for RankSource<'_> {
    fn next_batch_into(&mut self, dst: &mut Matrix<f64>) -> io::Result<bool> {
        let Some(b) = self.batches.get(self.next) else {
            return Ok(false);
        };
        dst.reshape_for_overwrite(self.r1 - self.r0, b.cols());
        for (ii, i) in (self.r0..self.r1).enumerate() {
            dst.row_mut(ii).copy_from_slice(b.row(i));
        }
        self.next += 1;
        Ok(true)
    }

    fn batches_hint(&self) -> Option<usize> {
        Some(self.batches.len() - self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(rows: usize, cols: usize, tag: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| tag + (i * cols + j) as f64)
    }

    #[test]
    fn recuts_arrivals_to_canonical_width() {
        let mut q = BatchQueue::new(3, 4, 64);
        q.push(chunk(3, 3, 0.0)).unwrap();
        assert_eq!(q.ready_batches(), 0);
        assert!(q.take_round(4).is_none(), "no full batch yet");
        q.push(chunk(3, 6, 100.0)).unwrap();
        let round = q.take_round(4).expect("two full batches");
        assert_eq!(round.len(), 2);
        assert!(round.batches().iter().all(|b| b.cols() == 4));
        assert_eq!(q.pending_snapshots(), 1, "runt stays queued");
        let flush = q.take_flush(4).expect("runt");
        assert_eq!(flush.snapshots(), 1);
        assert!(q.take_flush(4).is_none());
    }

    #[test]
    fn coalescing_preserves_column_order() {
        let a = Matrix::from_fn(2, 9, |i, j| (i * 9 + j) as f64);
        let mut q = BatchQueue::new(2, 3, 32);
        q.push(a.submatrix(0, 2, 0, 2)).unwrap();
        q.push(a.submatrix(0, 2, 2, 3)).unwrap();
        q.push(a.submatrix(0, 2, 3, 9)).unwrap();
        let round = q.take_round(8).unwrap();
        assert_eq!(Matrix::hstack_all(round.batches()), a);
    }

    #[test]
    fn depth_backpressure() {
        let mut q = BatchQueue::new(2, 2, 4);
        q.push(chunk(2, 3, 0.0)).unwrap();
        let err = q.push(chunk(2, 2, 0.0)).unwrap_err();
        assert_eq!(err, QueueFull { pending: 3, depth: 4 });
        q.push(chunk(2, 1, 0.0)).unwrap();
        assert_eq!(q.accepted(), 4);
    }

    #[test]
    fn rank_source_partitions_rows() {
        let round = CoalescedBatches::from_batches(vec![chunk(5, 2, 0.0), chunk(5, 2, 50.0)]);
        let mut whole = Matrix::zeros(0, 0);
        let mut parts: Vec<Matrix> = Vec::new();
        let mut src = round.rank_source(1, 0);
        assert_eq!(src.batches_hint(), Some(2));
        while src.next_batch_into(&mut whole).unwrap() {
            parts.push(whole.clone());
        }
        assert_eq!(parts.len(), 2);
        for (b, p) in round.batches().iter().zip(&parts) {
            assert_eq!(b, p);
        }
        // Two-rank split: blocks vstack back to the batch.
        let mut top = Matrix::zeros(0, 0);
        let mut bot = Matrix::zeros(0, 0);
        assert!(round.rank_source(2, 0).next_batch_into(&mut top).unwrap());
        assert!(round.rank_source(2, 1).next_batch_into(&mut bot).unwrap());
        assert_eq!(top.vstack(&bot), round.batches()[0]);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn wrong_height_rejected() {
        let mut q = BatchQueue::new(3, 2, 8);
        let _ = q.push(chunk(4, 2, 0.0));
    }
}
