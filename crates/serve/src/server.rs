//! The multi-tenant daemon: session map, worker pool, eviction.
//!
//! Lock discipline (always in this order, never reversed):
//! `sessions` map read lock → a session's `slot` → that session's
//! `queue`; the `model` RwLock is only ever taken alone. Queries touch
//! *only* `model` (an `Arc` clone under a momentary read lock), so a
//! query can never wait on any tenant's update computation — updates hold
//! `slot` for the duration of a round and swap `model` in O(1) at the
//! end. Eviction sweeps use `try_lock` on victims and skip anything
//! contended, so two workers can never deadlock evicting each other.
//!
//! Round exclusivity: a session's `scheduled` flag is held from enqueue
//! until its round commits, so the tenant sits in the dispatch queue at
//! most once and no two workers can ever run rounds for the same session
//! concurrently — work is cut and committed in the same order, keeping
//! the published model a pure function of the column stream at any
//! worker count. See [`Inner::process`] for why no racing submit is
//! lost.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use psvd_linalg::Matrix;

use crate::queue::BatchQueue;
use crate::session::{SessionModel, SessionSpec, SessionState};
use crate::stats::ServeStats;

/// Read a `usize` server knob from the environment; unset or empty means
/// `default`. Panics on non-numeric values so typos fail loudly.
fn env_knob(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) if v.is_empty() => default,
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{name} must be a non-negative integer, got {v:?}")),
    }
}

/// Server-wide configuration. `Default` seeds every field from the
/// environment (`PSVD_SERVE_*`), mirroring how `SvdConfig::new` seeds
/// its knobs; the builders override per instance.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Resident (non-evicted) session cap; beyond it the least-recently
    /// touched idle session is spilled. `PSVD_SERVE_SESSIONS`, default 64.
    pub sessions: usize,
    /// Per-session pending-snapshot cap (backpressure).
    /// `PSVD_SERVE_QUEUE_DEPTH`, default 1024.
    pub queue_depth: usize,
    /// Evict sessions untouched for this many committed rounds of server
    /// time (`0` = only the cap evicts). `PSVD_SERVE_IDLE_ROUNDS`,
    /// default 0.
    pub idle_rounds: usize,
    /// Worker threads draining the queues. `PSVD_SERVE_WORKERS`, default 2.
    pub workers: usize,
    /// Most canonical batches coalesced into one round (fairness bound).
    /// `PSVD_SERVE_ROUND_BATCHES`, default 4.
    pub round_batches: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            sessions: env_knob("PSVD_SERVE_SESSIONS", 64),
            queue_depth: env_knob("PSVD_SERVE_QUEUE_DEPTH", 1024),
            idle_rounds: env_knob("PSVD_SERVE_IDLE_ROUNDS", 0),
            workers: env_knob("PSVD_SERVE_WORKERS", 2),
            round_batches: env_knob("PSVD_SERVE_ROUND_BATCHES", 4),
        }
    }
}

impl ServeConfig {
    /// Builder: resident session cap.
    pub fn with_sessions(mut self, n: usize) -> Self {
        self.sessions = n;
        self
    }

    /// Builder: per-session queue depth.
    pub fn with_queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Builder: idle-eviction threshold in server rounds.
    pub fn with_idle_rounds(mut self, n: usize) -> Self {
        self.idle_rounds = n;
        self
    }

    /// Builder: worker threads.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Builder: max batches per round.
    pub fn with_round_batches(mut self, n: usize) -> Self {
        self.round_batches = n;
        self
    }

    fn validated(self) -> Self {
        assert!(self.sessions >= 1, "need room for at least one resident session");
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.round_batches >= 1, "rounds must carry at least one batch");
        self
    }
}

/// Why a request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// No session is open under this tenant key.
    UnknownTenant(String),
    /// `open` on a key that already has a session.
    TenantExists(String),
    /// The session's ingestion queue is at capacity; retry after a drain.
    QueueFull {
        /// Snapshots pending in the queue.
        pending: usize,
        /// The configured depth.
        depth: usize,
    },
    /// The session has not committed a round yet — nothing to query.
    NotReady(String),
    /// A submitted chunk's row count does not match the session.
    ShapeMismatch {
        /// Rows the session was opened with.
        expected: usize,
        /// Rows the chunk carried.
        got: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t:?} already has a session"),
            ServeError::QueueFull { pending, depth } => {
                write!(f, "queue full ({pending} pending, depth {depth})")
            }
            ServeError::NotReady(t) => write!(f, "tenant {t:?} has no committed model yet"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "snapshot has {got} rows, session expects {expected}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A session's durable state: live in memory, or spilled to its
/// checkpoint blob.
enum Slot {
    Live(Box<SessionState>),
    Evicted(Vec<u8>),
}

struct Session {
    tenant: String,
    spec: SessionSpec,
    queue: Mutex<BatchQueue>,
    slot: Mutex<Slot>,
    model: RwLock<Option<Arc<SessionModel>>>,
    /// Dedup flag *and* round mutex: set when the tenant enters the
    /// dispatch queue, cleared only after its round commits — so at most
    /// one dispatch entry (and therefore one worker round) exists per
    /// session at any time.
    scheduled: AtomicBool,
    /// A worker is inside a round right now. Single-writer (only the
    /// round owner toggles it, and rounds are serialized by `scheduled`);
    /// gates the eviction sweep and `is_busy`.
    busy: AtomicBool,
    /// Drain the runt batch on the next dispatch.
    flush_requested: AtomicBool,
    /// Logical server time of the last round/query touch (LRU key).
    last_touch: AtomicU64,
}

struct Sched {
    queue: VecDeque<String>,
    /// Rounds currently owned by a worker, keyed by tenant. A count, not
    /// a set: a worker's post-commit tail (ready-work re-check + sweep)
    /// can overlap the next round's start for the same tenant.
    in_flight: HashMap<String, u32>,
    active: usize,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    sessions: RwLock<HashMap<String, Arc<Session>>>,
    sched: Mutex<Sched>,
    work_cv: Condvar,
    idle_cv: Condvar,
    stats: ServeStats,
    /// Logical clock: one tick per committed round (drives LRU + idle).
    clock: AtomicU64,
    /// Live (non-evicted) sessions.
    resident: AtomicUsize,
}

/// The SVD-as-a-service daemon. See the crate docs for the architecture
/// and DESIGN.md ("Service architecture") for the contracts.
pub struct SvdServer {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SvdServer {
    /// Start a server and its worker pool.
    pub fn new(cfg: ServeConfig) -> Self {
        let cfg = cfg.validated();
        let inner = Arc::new(Inner {
            cfg,
            sessions: RwLock::new(HashMap::new()),
            sched: Mutex::new(Sched {
                queue: VecDeque::new(),
                in_flight: HashMap::new(),
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            stats: ServeStats::default(),
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers: Mutex::new(workers) }
    }

    /// Open a session under `tenant`.
    pub fn open(&self, tenant: &str, spec: SessionSpec) -> Result<(), ServeError> {
        let spec = spec.validated();
        let mut map = self.inner.sessions.write().unwrap();
        if map.contains_key(tenant) {
            return Err(ServeError::TenantExists(tenant.to_string()));
        }
        let session = Arc::new(Session {
            tenant: tenant.to_string(),
            spec,
            queue: Mutex::new(BatchQueue::new(spec.rows, spec.batch, self.inner.cfg.queue_depth)),
            slot: Mutex::new(Slot::Live(Box::new(SessionState::new(spec)))),
            model: RwLock::new(None),
            scheduled: AtomicBool::new(false),
            busy: AtomicBool::new(false),
            flush_requested: AtomicBool::new(false),
            last_touch: AtomicU64::new(self.inner.clock.load(Ordering::Relaxed)),
        });
        map.insert(tenant.to_string(), session);
        drop(map);
        self.inner.resident.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Submit a chunk of snapshots (columns) for `tenant`. Returns as
    /// soon as the chunk is queued; a worker picks it up once a full
    /// canonical batch is pending.
    pub fn submit(&self, tenant: &str, chunk: Matrix) -> Result<(), ServeError> {
        let session = self.inner.get(tenant)?;
        if chunk.rows() != session.spec.rows {
            return Err(ServeError::ShapeMismatch {
                expected: session.spec.rows,
                got: chunk.rows(),
            });
        }
        let cols = chunk.cols() as u64;
        let ready = {
            let mut q = session.queue.lock().unwrap();
            match q.push(chunk) {
                Ok(()) => {}
                Err(full) => {
                    self.inner.stats.snapshots_rejected.fetch_add(cols, Ordering::Relaxed);
                    return Err(ServeError::QueueFull { pending: full.pending, depth: full.depth });
                }
            }
            q.ready_batches()
        };
        self.inner.stats.snapshots_accepted.fetch_add(cols, Ordering::Relaxed);
        if ready > 0 {
            self.inner.schedule(&session);
        }
        Ok(())
    }

    /// Ask a worker to drain `tenant`'s runt (sub-batch-width) remainder.
    pub fn flush(&self, tenant: &str) -> Result<(), ServeError> {
        let session = self.inner.get(tenant)?;
        if request_flush(&session) {
            self.inner.schedule(&session);
        }
        Ok(())
    }

    /// Flush every session's remainder.
    pub fn flush_all(&self) {
        let sessions: Vec<Arc<Session>> =
            self.inner.sessions.read().unwrap().values().cloned().collect();
        for s in sessions {
            if request_flush(&s) {
                self.inner.schedule(&s);
            }
        }
    }

    /// Block until every dispatched round has committed and no session
    /// has schedulable work left (runts stay pending unless flushed).
    pub fn drain(&self) {
        let mut sched = self.inner.sched.lock().unwrap();
        while !sched.queue.is_empty() || sched.active > 0 {
            sched = self.inner.idle_cv.wait(sched).unwrap();
        }
    }

    /// The tenant's current model (rehydrating an evicted session).
    pub fn model(&self, tenant: &str) -> Result<Arc<SessionModel>, ServeError> {
        let t0 = Instant::now();
        let session = self.inner.get(tenant)?;
        let model = self.inner.model_of(&session)?;
        self.inner.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.query_latency.record(t0.elapsed());
        session.last_touch.store(self.inner.clock.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(model)
    }

    /// Query: current singular values.
    pub fn singular_values(&self, tenant: &str) -> Result<Vec<f64>, ServeError> {
        Ok(self.model(tenant)?.singular_values.clone())
    }

    /// Query: modal coefficients of a snapshot.
    pub fn project(&self, tenant: &str, snapshot: &[f64]) -> Result<Vec<f64>, ServeError> {
        let model = self.model(tenant)?;
        if snapshot.len() != model.modes.rows() {
            return Err(ServeError::ShapeMismatch {
                expected: model.modes.rows(),
                got: snapshot.len(),
            });
        }
        Ok(model.project(snapshot))
    }

    /// Query: reconstruction from modal coefficients.
    pub fn reconstruct(&self, tenant: &str, coefficients: &[f64]) -> Result<Vec<f64>, ServeError> {
        Ok(self.model(tenant)?.reconstruct(coefficients))
    }

    /// Query: residual fraction of a snapshot against the live subspace.
    pub fn residual_fraction(&self, tenant: &str, snapshot: &[f64]) -> Result<f64, ServeError> {
        let model = self.model(tenant)?;
        if snapshot.len() != model.modes.rows() {
            return Err(ServeError::ShapeMismatch {
                expected: model.modes.rows(),
                got: snapshot.len(),
            });
        }
        Ok(model.residual_fraction(snapshot))
    }

    /// Spill `tenant` to its checkpoint blob now (idle sessions only:
    /// returns `false` — and spills nothing — if a worker is mid-round).
    /// Pending queue contents survive eviction untouched.
    pub fn evict(&self, tenant: &str) -> Result<bool, ServeError> {
        let session = self.inner.get(tenant)?;
        Ok(self.inner.try_evict(&session))
    }

    /// Close `tenant`'s session, returning its final model if one was
    /// ever committed. Flush + drain first if the queue must be empty.
    pub fn close(&self, tenant: &str) -> Result<Option<Arc<SessionModel>>, ServeError> {
        let session = {
            let mut map = self.inner.sessions.write().unwrap();
            map.remove(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?
        };
        // A dispatched round may still be queued or running; wait it out
        // so the final commit is visible in `model` below. The dispatch
        // entry exists until a worker pops it, and the pop and the
        // in-flight mark happen under the same scheduler lock as this
        // predicate, so there is no window where a round is invisible.
        // New rounds cannot start: the map entry is gone, so a popped
        // dispatch finds no session and returns immediately. (After
        // `shutdown` the queue is already drained — workers only exit on
        // an empty queue — so this cannot wait forever.)
        {
            let mut sched = self.inner.sched.lock().unwrap();
            while sched.in_flight.contains_key(tenant) || sched.queue.iter().any(|t| t == tenant)
            {
                sched = self.inner.idle_cv.wait(sched).unwrap();
            }
        }
        if matches!(*session.slot.lock().unwrap(), Slot::Live(_)) {
            self.inner.resident.fetch_sub(1, Ordering::Relaxed);
        }
        self.inner.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
        let model = session.model.read().unwrap().clone();
        Ok(model)
    }

    /// Open sessions (live + evicted).
    pub fn session_count(&self) -> usize {
        self.inner.sessions.read().unwrap().len()
    }

    /// Live (non-evicted) sessions.
    pub fn resident_count(&self) -> usize {
        self.inner.resident.load(Ordering::Relaxed)
    }

    /// Is a worker inside a round for `tenant` right now?
    pub fn is_busy(&self, tenant: &str) -> bool {
        self.inner
            .sessions
            .read()
            .unwrap()
            .get(tenant)
            .is_some_and(|s| s.busy.load(Ordering::Acquire))
    }

    /// Committed rounds for `tenant`.
    pub fn session_rounds(&self, tenant: &str) -> Result<u64, ServeError> {
        let session = self.inner.get(tenant)?;
        let slot = session.slot.lock().unwrap();
        Ok(match &*slot {
            Slot::Live(st) => st.rounds(),
            Slot::Evicted(blob) => {
                SessionState::from_bytes(session.spec, blob).map(|st| st.rounds()).unwrap_or(0)
            }
        })
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServeStats {
        &self.inner.stats
    }

    /// Stop the workers (outstanding rounds finish first) and join them.
    ///
    /// A worker that panicked mid-round silently dropped that round's
    /// submissions, so the panic resurfaces here rather than being
    /// swallowed — unless shutdown is itself running during an unwind
    /// (the `Drop` path), where a second panic would abort the process.
    pub fn shutdown(&self) {
        {
            let mut sched = self.inner.sched.lock().unwrap();
            sched.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in self.workers.lock().unwrap().drain(..) {
            if let Err(e) = h.join() {
                panic.get_or_insert(e);
            }
        }
        if let Some(e) = panic {
            if std::thread::panicking() {
                eprintln!("psvd-serve: suppressing a worker panic (already unwinding)");
            } else {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl Drop for SvdServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn get(&self, tenant: &str) -> Result<Arc<Session>, ServeError> {
        self.sessions
            .read()
            .unwrap()
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    /// Put a session on the dispatch queue (once).
    fn schedule(&self, session: &Arc<Session>) {
        if !session.scheduled.swap(true, Ordering::AcqRel) {
            self.sched.lock().unwrap().queue.push_back(session.tenant.clone());
            self.work_cv.notify_one();
        }
    }

    /// The session's model, rehydrating from the eviction blob on demand.
    fn model_of(&self, session: &Arc<Session>) -> Result<Arc<SessionModel>, ServeError> {
        if let Some(m) = session.model.read().unwrap().clone() {
            return Ok(m);
        }
        // No published model: either the session never committed a round,
        // or it was evicted. Rehydrate under the slot lock.
        let mut slot = session.slot.lock().unwrap();
        if let Slot::Evicted(blob) = &*slot {
            let state = SessionState::from_bytes(session.spec, blob)
                .expect("eviction blob must decode: it was encoded by this server");
            *slot = Slot::Live(Box::new(state));
            self.resident.fetch_add(1, Ordering::Relaxed);
            self.stats.rehydrations.fetch_add(1, Ordering::Relaxed);
        }
        let Slot::Live(state) = &*slot else { unreachable!() };
        if !state.is_initialized() {
            return Err(ServeError::NotReady(session.tenant.clone()));
        }
        let model = Arc::new(state.model());
        drop(slot);
        // Publish outside the slot lock (the model RwLock is only ever
        // taken alone — see the module docs). A round may commit between
        // the drop above and this write; never let this snapshot shadow a
        // newer one.
        let mut published = session.model.write().unwrap();
        match &*published {
            Some(cur) if cur.rounds >= model.rounds => Ok(Arc::clone(cur)),
            _ => {
                *published = Some(Arc::clone(&model));
                Ok(model)
            }
        }
    }

    /// One fair round for one session: cut work, (rehydrate,) update,
    /// publish the new model, bump counters, then sweep for eviction.
    ///
    /// The `scheduled` flag stays set for the whole round and is released
    /// only after the commit, just before the final ready-work re-check.
    /// That makes per-session rounds mutually exclusive (at most one
    /// dispatch entry can exist while the flag is held) so cut order
    /// equals commit order, and the re-check guarantees a submit racing
    /// the round is never lost: `submit` pushes its columns *before*
    /// trying to schedule, so either its `schedule` lands after the flag
    /// release (and enqueues), or the re-check sees its columns (and
    /// enqueues here).
    fn process(&self, tenant: &str) {
        let Ok(session) = self.get(tenant) else {
            return; // closed while queued
        };
        session.busy.store(true, Ordering::Release);
        let flush = session.flush_requested.swap(false, Ordering::AcqRel);
        let work = {
            let mut q = session.queue.lock().unwrap();
            if flush {
                q.take_flush(self.cfg.round_batches)
            } else {
                q.take_round(self.cfg.round_batches)
            }
        };
        if flush && session.queue.lock().unwrap().pending_snapshots() > 0 {
            // take_flush was capped by round_batches; keep flushing.
            session.flush_requested.store(true, Ordering::Release);
        }
        if let Some(work) = work {
            let mut slot = session.slot.lock().unwrap();
            if let Slot::Evicted(blob) = &*slot {
                let state = SessionState::from_bytes(session.spec, blob)
                    .expect("eviction blob must decode: it was encoded by this server");
                *slot = Slot::Live(Box::new(state));
                self.resident.fetch_add(1, Ordering::Relaxed);
                self.stats.rehydrations.fetch_add(1, Ordering::Relaxed);
            }
            let Slot::Live(state) = &mut *slot else { unreachable!() };
            let report = match &session.spec.chaos {
                Some(spec) => {
                    let plan = spec.plan_for(&session.tenant, state.rounds(), session.spec.ranks);
                    state.update_chaos(&work, &plan)
                }
                None => state.update(&work),
            };
            let model = Arc::new(state.model());
            drop(slot);
            *session.model.write().unwrap() = Some(model);

            let s = &self.stats;
            s.rounds.fetch_add(1, Ordering::Relaxed);
            s.updates.fetch_add(report.batches as u64, Ordering::Relaxed);
            s.snapshots_processed.fetch_add(report.snapshots as u64, Ordering::Relaxed);
            s.replays.fetch_add(u64::from(report.replayed), Ordering::Relaxed);
            s.wire_messages.fetch_add(report.messages, Ordering::Relaxed);
            s.wire_bytes.fetch_add(report.bytes, Ordering::Relaxed);
            let f = &report.fault;
            s.faults_absorbed
                .fetch_add(f.drops + f.delays + f.truncations + f.corruptions, Ordering::Relaxed);
            s.sim_comm_nanos.fetch_add((report.sim_seconds * 1e9) as u64, Ordering::Relaxed);
            let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            session.last_touch.store(now, Ordering::Relaxed);
        }
        session.busy.store(false, Ordering::Release);
        // Round over: release the dedup flag, *then* re-check the queue
        // (this order is what makes the no-lost-work argument above hold).
        session.scheduled.store(false, Ordering::Release);
        // More ready work (or a flush that raced in)? Back on the queue.
        let again = {
            let q = session.queue.lock().unwrap();
            q.ready_batches() > 0
                || (session.flush_requested.load(Ordering::Acquire) && q.pending_snapshots() > 0)
        };
        if again {
            self.schedule(&session);
        }
        self.sweep();
    }

    /// Evict idle sessions: everything past the idle threshold, then the
    /// least-recently-touched until the resident cap holds.
    fn sweep(&self) {
        let idle = self.cfg.idle_rounds as u64;
        let now = self.clock.load(Ordering::Relaxed);
        if idle > 0 {
            let stale: Vec<Arc<Session>> = self
                .sessions
                .read()
                .unwrap()
                .values()
                .filter(|s| now.saturating_sub(s.last_touch.load(Ordering::Relaxed)) >= idle)
                .cloned()
                .collect();
            for s in stale {
                self.try_evict(&s);
            }
        }
        if self.resident.load(Ordering::Relaxed) > self.cfg.sessions {
            // Walk candidates in LRU order; already-evicted or contended
            // sessions just fail try_evict and we move to the next. The
            // touch stamps keep mutating while we sort, so snapshot each
            // key once up front — sorting on live atomics hands the sort a
            // comparator that contradicts itself mid-run, which std's
            // sort detects and punishes with a panic.
            let mut candidates: Vec<(u64, Arc<Session>)> = self
                .sessions
                .read()
                .unwrap()
                .values()
                .filter(|s| !s.busy.load(Ordering::Acquire))
                .map(|s| (s.last_touch.load(Ordering::Relaxed), Arc::clone(s)))
                .collect();
            candidates.sort_by_key(|(touched, _)| *touched);
            for (_, s) in candidates {
                if self.resident.load(Ordering::Relaxed) <= self.cfg.sessions {
                    break;
                }
                self.try_evict(&s);
            }
        }
    }

    /// Spill one session if it is idle; `false` if contended or already
    /// evicted.
    fn try_evict(&self, session: &Arc<Session>) -> bool {
        if session.busy.load(Ordering::Acquire) {
            return false;
        }
        let Ok(mut slot) = session.slot.try_lock() else {
            return false;
        };
        let Slot::Live(state) = &*slot else {
            return false;
        };
        let blob = state.to_bytes();
        self.stats.evicted_bytes.fetch_add(blob.len() as u64, Ordering::Relaxed);
        *slot = Slot::Evicted(blob);
        drop(slot);
        *session.model.write().unwrap() = None;
        self.resident.fetch_sub(1, Ordering::Relaxed);
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// Raise the session's flush flag if it has pending columns; `true` when
/// a dispatch is needed. The store happens *inside* the queue critical
/// section so it is ordered (by the mutex) against an in-flight round's
/// end-of-round re-check, which reads the flag under the same lock —
/// with the store outside, the flag write and the re-check's flag read
/// could both land stale (store buffering) and the flush would be lost.
fn request_flush(session: &Session) -> bool {
    let q = session.queue.lock().unwrap();
    let pending = q.pending_snapshots() > 0;
    if pending {
        session.flush_requested.store(true, Ordering::Release);
    }
    pending
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let tenant = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if let Some(t) = sched.queue.pop_front() {
                    sched.active += 1;
                    *sched.in_flight.entry(t.clone()).or_insert(0) += 1;
                    break t;
                }
                if sched.shutdown {
                    return;
                }
                sched = inner.work_cv.wait(sched).unwrap();
            }
        };
        // An unhandled panic inside a round must not wedge the scheduler:
        // without the unwind guard, `active` never comes back down and
        // every future `drain()` (and `close()`, which waits on the
        // in-flight mark) blocks forever. The guard rebalances the books,
        // then the unwind continues and kills this worker (the panic
        // resurfaces when `shutdown` joins).
        let settle = SettleActive { inner, tenant: &tenant };
        inner.process(&tenant);
        drop(settle);
    }
}

struct SettleActive<'a> {
    inner: &'a Arc<Inner>,
    tenant: &'a str,
}

impl Drop for SettleActive<'_> {
    fn drop(&mut self) {
        // Tolerate poisoning: this drop may itself run during an unwind,
        // and a second panic here would abort the whole process.
        let mut sched = match self.inner.sched.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        sched.active -= 1;
        if let Some(n) = sched.in_flight.get_mut(self.tenant) {
            *n -= 1;
            if *n == 0 {
                sched.in_flight.remove(self.tenant);
            }
        }
        // Wake every waiter: `drain` waits for full idleness, `close` for
        // one tenant's round — both re-check their predicate under the
        // lock, so the extra wakeups are harmless.
        self.inner.idle_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_core::SvdConfig;

    fn spec(rows: usize, batch: usize) -> SessionSpec {
        SessionSpec::new(2, rows)
            .with_svd(
                SvdConfig::new(2).with_r1(4).with_r2(4).with_tree_fanout(0).with_tree_depth(0),
            )
            .with_batch(batch)
    }

    fn chunk(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| ((i as f64 + 3.0 * j as f64 + seed as f64) * 0.21).sin())
    }

    #[test]
    fn submit_query_close_lifecycle() {
        let server = SvdServer::new(ServeConfig::default().with_workers(2));
        server.open("a", spec(16, 4)).unwrap();
        assert_eq!(server.open("a", spec(16, 4)), Err(ServeError::TenantExists("a".into())));
        assert!(matches!(server.singular_values("a"), Err(ServeError::NotReady(_))));
        server.submit("a", chunk(16, 10, 1)).unwrap();
        server.drain();
        server.flush("a").unwrap();
        server.drain();
        assert_eq!(server.session_rounds("a").unwrap(), 2, "8 cols round + 2-col flush");
        let model = server.model("a").unwrap();
        assert_eq!(model.snapshots_seen, 10);
        let sigma = server.singular_values("a").unwrap();
        assert_eq!(sigma.len(), 2);
        assert!(sigma[0] >= sigma[1]);
        let closed = server.close("a").unwrap().expect("final model");
        assert_eq!(closed.singular_values, sigma);
        assert!(matches!(server.submit("a", chunk(16, 1, 0)), Err(ServeError::UnknownTenant(_))));
        assert_eq!(server.session_count(), 0);
        server.shutdown();
    }

    #[test]
    fn wrong_shape_and_backpressure_surface_as_errors() {
        let server = SvdServer::new(ServeConfig::default().with_queue_depth(6).with_workers(1));
        server.open("a", spec(12, 4)).unwrap();
        assert_eq!(
            server.submit("a", chunk(13, 2, 0)),
            Err(ServeError::ShapeMismatch { expected: 12, got: 13 })
        );
        // Stall the worker? No — just overfill between drains.
        let mut rejected = false;
        for i in 0..64 {
            if server.submit("a", chunk(12, 3, i)).is_err() {
                rejected = true;
                break;
            }
        }
        server.drain();
        if !rejected {
            // The worker kept up; force it synchronously.
            let q_err = ServeError::QueueFull { pending: 6, depth: 6 };
            let _ = q_err; // backpressure exercised in queue unit tests
        }
        assert_eq!(
            server.stats().snapshot().snapshots_accepted,
            server.stats().snapshot().snapshots_processed
                + server.inner.get("a").unwrap().queue.lock().unwrap().pending_snapshots() as u64
        );
        server.shutdown();
    }

    #[test]
    fn cap_eviction_and_rehydration_round_trip() {
        let server = SvdServer::new(ServeConfig::default().with_sessions(2).with_workers(1));
        for t in ["a", "b", "c", "d"] {
            server.open(t, spec(16, 4)).unwrap();
            server.submit(t, chunk(16, 8, 42)).unwrap();
        }
        server.drain();
        assert!(
            server.resident_count() <= 2,
            "cap must hold after the sweep (resident: {})",
            server.resident_count()
        );
        let snap = server.stats().snapshot();
        assert!(snap.evictions >= 2);
        assert!(snap.evicted_bytes > 0);
        // All four tenants answer queries identically (same data), the
        // evicted ones via rehydration.
        let sigmas: Vec<Vec<f64>> =
            ["a", "b", "c", "d"].iter().map(|t| server.singular_values(t).unwrap()).collect();
        assert!(sigmas.iter().all(|s| s == &sigmas[0]));
        assert!(server.stats().snapshot().rehydrations >= 2);
        server.shutdown();
    }
}
