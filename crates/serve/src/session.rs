//! Session state: checkpoint-in / checkpoint-out update rounds.
//!
//! A served session cannot hold a live [`ParallelStreamingSvd`] between
//! requests — the driver borrows its communicator, and a long-lived
//! service must also survive worker crashes. So the *durable* state of a
//! session is exactly its per-rank [`SvdCheckpoint`] set, and every
//! update round is ephemeral: restore drivers over a stack-local
//! communicator, stream the round's batches through `try_fit_source`,
//! commit the new checkpoint set. Checkpoint/restore is bit-transparent
//! on the deterministic path (pinned by `resume_is_bit_exact` /
//! `distributed_restart_is_bit_exact`), so the round engine adds nothing
//! observable to the mathematics.
//!
//! **Crash recovery contract.** Under a fault plan, transient faults
//! (drops, delays, corruption) are absorbed by the comm layer's retries
//! and are bitwise invisible. A permanent fault (rank death) makes the
//! round fail — and because the driver can detect a death *after* its
//! local state swap, per-rank results may be at mixed steps. The engine
//! therefore never commits a partial round: on any rank error it discards
//! every per-rank result and replays the whole round from the still-held
//! pre-round checkpoints on a clean world. The committed factorization is
//! bitwise identical to one that never saw the fault — the property the
//! chaos-soak suite holds across thousands of session-updates.

use psvd_comm::{Communicator, FaultComm, FaultPlan, FaultStats, NetworkModel, SelfComm, World};
use psvd_core::{IngestError, ParallelStreamingSvd, SvdCheckpoint, SvdConfig};
use psvd_data::partition::block_len;
use psvd_linalg::Matrix;

use crate::chaos::ChaosSpec;
use crate::queue::CoalescedBatches;

/// Everything that defines a tenant's session.
#[derive(Clone, Copy, Debug)]
pub struct SessionSpec {
    /// Driver configuration (the deterministic path; see `validated`).
    pub svd: SvdConfig,
    /// Global snapshot rows `M`.
    pub rows: usize,
    /// Simulated ranks per update round (1 = in-thread `SelfComm`).
    pub ranks: usize,
    /// Canonical ingestion batch width.
    pub batch: usize,
    /// Charge round communication to this simulated network.
    pub network: Option<NetworkModel>,
    /// Fault schedules injected into every round (needs `ranks >= 2`).
    pub chaos: Option<ChaosSpec>,
}

impl SessionSpec {
    /// A `k`-mode session over `rows`-row snapshots with library defaults.
    pub fn new(k: usize, rows: usize) -> Self {
        Self { svd: SvdConfig::new(k), rows, ranks: 1, batch: 8, network: None, chaos: None }
    }

    /// Builder: full driver configuration.
    pub fn with_svd(mut self, svd: SvdConfig) -> Self {
        self.svd = svd;
        self
    }

    /// Builder: ranks per update round.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Builder: canonical batch width.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: simulated network model for round communication.
    pub fn with_network(mut self, model: NetworkModel) -> Self {
        self.network = Some(model);
        self
    }

    /// Builder: chaos schedule.
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Panics if the spec is unusable; returns `self` otherwise.
    pub fn validated(self) -> Self {
        let _ = self.svd.validated();
        assert!(self.ranks >= 1, "sessions need at least one rank");
        assert!(self.batch > 0, "batch width must be positive");
        let min_block = block_len(self.rows, self.ranks, self.ranks - 1);
        assert!(
            min_block >= self.batch.max(self.svd.k),
            "smallest row block ({min_block} rows) must cover the batch width ({}) and K ({})",
            self.batch,
            self.svd.k
        );
        if self.chaos.is_some() {
            assert!(
                self.ranks >= 2,
                "chaos needs ranks >= 2: a single-rank round performs no communication"
            );
            assert!(
                !self.svd.low_rank,
                "chaos replay guarantees bitwise recovery only on the deterministic path \
                 (the randomized path reseeds its RNG per restore)"
            );
        }
        self
    }
}

/// What one committed update round did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundReport {
    /// Driver batch incorporations in the round.
    pub batches: usize,
    /// Snapshots ingested.
    pub snapshots: usize,
    /// The faulted attempt failed and the round was replayed cleanly from
    /// the pre-round checkpoints.
    pub replayed: bool,
    /// Injected-fault counters summed over ranks (attempt + replay).
    pub fault: FaultStats,
    /// Simulated seconds (max rank clock, attempt + replay).
    pub sim_seconds: f64,
    /// Wire messages across the round's world(s).
    pub messages: u64,
    /// Wire bytes across the round's world(s).
    pub bytes: u64,
}

fn merge_fault(into: &mut FaultStats, s: &FaultStats) {
    into.drops += s.drops;
    into.delays += s.delays;
    into.truncations += s.truncations;
    into.corruptions += s.corruptions;
    into.retries += s.retries;
    into.backoff_secs += s.backoff_secs;
}

/// The durable state of one tenant's streaming session.
#[derive(Clone, Debug)]
pub struct SessionState {
    spec: SessionSpec,
    /// One checkpoint per rank; empty until the first committed round.
    parts: Vec<SvdCheckpoint>,
    rounds: u64,
    replays: u64,
}

const BLOB_MAGIC: &[u8; 8] = b"PSVDSRV2";

impl SessionState {
    /// A fresh (uninitialized) session.
    pub fn new(spec: SessionSpec) -> Self {
        Self { spec: spec.validated(), parts: Vec::new(), rounds: 0, replays: 0 }
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Committed update rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds that needed a clean replay after a permanent fault.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Snapshots ingested so far.
    pub fn snapshots_seen(&self) -> usize {
        self.parts.first().map_or(0, |p| p.snapshots_seen)
    }

    /// True once the first round has committed.
    pub fn is_initialized(&self) -> bool {
        !self.parts.is_empty()
    }

    /// Exact eviction-spill size of this state, in bytes.
    pub fn byte_len(&self) -> usize {
        48 + self.parts.iter().map(|p| 8 + p.byte_len()).sum::<usize>()
    }

    /// Stream one round of batches (no faults).
    pub fn update(&mut self, work: &CoalescedBatches) -> RoundReport {
        self.update_with_plan(work, None)
    }

    /// Stream one round under a fault plan; on a permanent fault the
    /// round is replayed cleanly from the pre-round checkpoints (see the
    /// module docs for why partial results are never kept).
    pub fn update_chaos(&mut self, work: &CoalescedBatches, plan: &FaultPlan) -> RoundReport {
        self.update_with_plan(work, Some(plan))
    }

    fn update_with_plan(
        &mut self,
        work: &CoalescedBatches,
        plan: Option<&FaultPlan>,
    ) -> RoundReport {
        assert!(!work.is_empty(), "a round needs at least one batch");
        assert_eq!(work.rows(), self.spec.rows, "round rows do not match the session");
        let mut report = RoundReport {
            batches: work.len(),
            snapshots: work.snapshots(),
            ..RoundReport::default()
        };

        if self.spec.ranks == 1 && plan.is_none() {
            // Single-rank fast path: no thread spawn, no wire traffic.
            let comm = SelfComm::new();
            let prior = self.parts.pop();
            let part = drive(&comm, self.spec.svd, prior, work, 1, 0)
                .expect("single-rank ingestion cannot fail");
            report.sim_seconds = comm.now();
            self.parts = vec![part];
        } else {
            let (results, stats) = self.run_world(work, plan, &mut report);
            match results {
                Ok(parts) => self.parts = parts,
                Err(_) => {
                    // Permanent fault: discard every per-rank result and
                    // replay the whole round from the pre-round
                    // checkpoints on a clean world.
                    let (replayed, _) = self.run_world(work, None, &mut report);
                    self.parts = replayed.expect("clean replay cannot fail");
                    report.replayed = true;
                    self.replays += 1;
                }
            }
            merge_fault(&mut report.fault, &stats);
        }
        self.rounds += 1;
        report
    }

    /// One world-run attempt: every rank restores, ingests, checkpoints.
    /// `Err` carries the first rank error (the round must not commit).
    fn run_world(
        &self,
        work: &CoalescedBatches,
        plan: Option<&FaultPlan>,
        report: &mut RoundReport,
    ) -> (Result<Vec<SvdCheckpoint>, IngestError>, FaultStats) {
        let ranks = self.spec.ranks;
        let world = match self.spec.network {
            Some(m) => World::with_model(ranks, m),
            None => World::new(ranks),
        };
        let parts = &self.parts;
        let cfg = self.spec.svd;
        let (out, clocks) = world.run_with_clocks(|comm| {
            let rank = comm.rank();
            let prior = parts.get(rank).cloned();
            match plan {
                Some(p) => {
                    let fc = FaultComm::new(comm, p.clone());
                    let r = drive(&fc, cfg, prior, work, ranks, rank);
                    (r, fc.stats())
                }
                None => (drive(comm, cfg, prior, work, ranks, rank), FaultStats::default()),
            }
        });
        report.sim_seconds += clocks.iter().cloned().fold(0.0, f64::max);
        report.messages += world.stats().total_messages();
        report.bytes += world.stats().total_bytes();
        let mut fault = FaultStats::default();
        let mut parts = Vec::with_capacity(ranks);
        let mut err = None;
        for (r, s) in out {
            merge_fault(&mut fault, &s);
            match r {
                Ok(p) => parts.push(p),
                Err(e) => err = Some(err.unwrap_or(e)),
            }
        }
        (
            match err {
                Some(e) => Err(e),
                None => Ok(parts),
            },
            fault,
        )
    }

    /// The queryable model: global modes (rank blocks vstacked in row
    /// order) plus singular values. Panics before the first round.
    pub fn model(&self) -> SessionModel {
        assert!(self.is_initialized(), "model of an uninitialized session");
        let global = SvdCheckpoint::vstack(self.parts.clone());
        SessionModel {
            modes: global.modes,
            singular_values: global.singular_values,
            rounds: self.rounds,
            snapshots_seen: global.snapshots_seen,
        }
    }

    /// Serialize for eviction: a small header plus every rank's
    /// length-prefixed [`SvdCheckpoint`] encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(BLOB_MAGIC);
        for v in [
            self.spec.rows as u64,
            self.spec.ranks as u64,
            self.rounds,
            self.replays,
            self.parts.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for p in &self.parts {
            let enc = p.to_bytes();
            out.extend_from_slice(&(enc.len() as u64).to_le_bytes());
            out.extend_from_slice(&enc);
        }
        out
    }

    /// Rehydrate a state evicted by [`SessionState::to_bytes`]. The spec
    /// is not serialized (the server keeps it resident); it must match
    /// the one the state was evicted under.
    pub fn from_bytes(spec: SessionSpec, data: &[u8]) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());
        if data.len() < 48 || &data[..8] != BLOB_MAGIC {
            return Err(bad("not a PSVD session blob"));
        }
        let word = |i: usize| {
            u64::from_le_bytes(data[8 + i * 8..16 + i * 8].try_into().expect("sized")) as usize
        };
        let (rows, ranks, rounds, replays, nparts) =
            (word(0), word(1), word(2), word(3), word(4));
        if rows != spec.rows || ranks != spec.ranks {
            return Err(bad("session blob does not match the spec"));
        }
        let mut parts = Vec::with_capacity(nparts);
        let mut off = 48;
        for _ in 0..nparts {
            if data.len() < off + 8 {
                return Err(bad("truncated session blob"));
            }
            let len = u64::from_le_bytes(data[off..off + 8].try_into().expect("sized")) as usize;
            off += 8;
            if data.len() < off + len {
                return Err(bad("truncated session blob"));
            }
            parts.push(SvdCheckpoint::from_bytes(&data[off..off + len])?);
            off += len;
        }
        if off != data.len() || (nparts > 0 && nparts != ranks) {
            return Err(bad("session blob length mismatch"));
        }
        let mut s = Self::new(spec);
        s.parts = parts;
        s.rounds = rounds as u64;
        s.replays = replays as u64;
        Ok(s)
    }
}

/// Restore (or freshly create) this rank's driver, ingest the round
/// through the untouched `try_fit_source` path, and hand back the new
/// checkpoint.
fn drive<C: Communicator>(
    comm: &C,
    cfg: SvdConfig,
    prior: Option<SvdCheckpoint>,
    work: &CoalescedBatches,
    n_ranks: usize,
    rank: usize,
) -> Result<SvdCheckpoint, IngestError> {
    let mut d = match prior {
        Some(ckpt) => ParallelStreamingSvd::restore(comm, cfg, ckpt),
        None => ParallelStreamingSvd::new(comm, cfg),
    };
    let mut src = work.rank_source(n_ranks, rank);
    d.try_fit_source(&mut src)?;
    Ok(d.into_checkpoint())
}

/// An immutable, query-ready snapshot of a session's factorization.
///
/// Published behind an `Arc` after every committed round; query endpoints
/// clone the `Arc` and compute lock-free, so no query ever waits on an
/// update computation.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionModel {
    /// Global modes `M x K'`.
    pub modes: Matrix,
    /// Singular values (length `K'`).
    pub singular_values: Vec<f64>,
    /// Rounds committed when this model was published.
    pub rounds: u64,
    /// Snapshots ingested when this model was published.
    pub snapshots_seen: usize,
}

impl SessionModel {
    /// Modal coefficients of a snapshot: `c = Uᵀ x`.
    pub fn project(&self, snapshot: &[f64]) -> Vec<f64> {
        assert_eq!(snapshot.len(), self.modes.rows(), "snapshot length mismatch");
        psvd_linalg::gemm::matvec_t(&self.modes, snapshot)
    }

    /// Reconstruct a snapshot from modal coefficients: `x ≈ U c`.
    pub fn reconstruct(&self, coefficients: &[f64]) -> Vec<f64> {
        psvd_linalg::gemm::matvec(&self.modes, coefficients)
    }

    /// How much of a snapshot the tracked subspace misses:
    /// `‖x − U Uᵀ x‖₂ / ‖x‖₂` (the online novelty signal).
    pub fn residual_fraction(&self, snapshot: &[f64]) -> f64 {
        let rec = self.reconstruct(&self.project(snapshot));
        let mut num = 0.0;
        let mut den = 0.0;
        for (x, r) in snapshot.iter().zip(&rec) {
            num += (x - r) * (x - r);
            den += x * x;
        }
        (num / den.max(f64::MIN_POSITIVE)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::BatchQueue;
    use psvd_core::SerialStreamingSvd;

    fn data(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i as f64 * 0.7 + j as f64 * 1.3 + seed as f64) * 0.37).sin()
                + 0.5 * ((i as f64 - 2.0 * j as f64) * 0.11).cos()
        })
    }

    fn spec(rows: usize, ranks: usize, batch: usize) -> SessionSpec {
        SessionSpec::new(2, rows)
            .with_svd(
                SvdConfig::new(2).with_r1(4).with_r2(4).with_tree_fanout(0).with_tree_depth(0),
            )
            .with_ranks(ranks)
            .with_batch(batch)
    }

    fn rounds_of(a: &Matrix, batch: usize) -> Vec<CoalescedBatches> {
        let mut q = BatchQueue::new(a.rows(), batch, a.cols().max(batch));
        q.push(a.clone()).unwrap();
        let mut out = Vec::new();
        while let Some(r) = q.take_round(1) {
            out.push(r);
        }
        if let Some(r) = q.take_flush(8) {
            out.push(r);
        }
        out
    }

    #[test]
    fn single_rank_session_matches_direct_driver() {
        let a = data(20, 12, 3);
        let sp = spec(20, 1, 4);
        let mut st = SessionState::new(sp);
        for r in rounds_of(&a, 4) {
            st.update(&r);
        }
        let model = st.model();
        // Bitwise twin: the same driver run uninterrupted (the session's
        // round-by-round checkpointing must be invisible).
        let comm = SelfComm::new();
        let mut direct = ParallelStreamingSvd::new(&comm, sp.svd);
        direct.fit_batched(&a, 4);
        assert_eq!(model.snapshots_seen, 12);
        let (direct_modes, direct_sigma) = direct.into_modes();
        assert_eq!(model.singular_values, direct_sigma);
        assert_eq!(model.modes, direct_modes);
        // The serial driver takes a different (but equivalent) reduction
        // path; it agrees to roundoff and anchors the query endpoints.
        let mut serial = SerialStreamingSvd::new(sp.svd);
        serial.fit_batched(&a, 4);
        for (s, p) in model.singular_values.iter().zip(serial.singular_values()) {
            assert!((s - p).abs() <= 1e-9 * p.abs(), "sigma drifted: {s} vs {p}");
        }
        let x = a.col(5);
        let (p_model, p_serial) = (model.project(&x), serial.project(&x));
        for (m, s) in p_model.iter().zip(&p_serial) {
            // Each mode's sign is arbitrary, so compare magnitudes.
            assert!((m.abs() - s.abs()).abs() <= 1e-8 * (1.0 + s.abs()), "projection drifted");
        }
        assert!(
            (model.residual_fraction(&x) - serial.residual_fraction(&x)).abs() <= 1e-8,
            "residual drifted"
        );
    }

    #[test]
    fn multi_rank_session_matches_single_shot_run() {
        let a = data(24, 12, 9);
        let sp = spec(24, 3, 4);
        let mut st = SessionState::new(sp);
        for r in rounds_of(&a, 4) {
            let rep = st.update(&r);
            assert!(!rep.replayed);
            assert!(rep.messages > 0, "multi-rank rounds must communicate");
        }
        // Round-by-round checkpointed streaming == one uninterrupted run.
        let blocks = psvd_data::partition::split_rows(&a, 3);
        let world = World::new(3);
        let straight = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, sp.svd);
            d.fit_batched(&blocks[comm.rank()], 4);
            (d.gather_modes(0), d.singular_values().to_vec())
        });
        let model = st.model();
        assert_eq!(model.singular_values, straight[0].1);
        assert_eq!(Some(model.modes), straight[0].0);
    }

    #[test]
    fn eviction_blob_roundtrip_is_lossless() {
        let a = data(18, 9, 5);
        let sp = spec(18, 2, 3);
        let mut st = SessionState::new(sp);
        for r in rounds_of(&a, 3) {
            st.update(&r);
        }
        let blob = st.to_bytes();
        assert_eq!(blob.len(), st.byte_len());
        let back = SessionState::from_bytes(sp, &blob).unwrap();
        assert_eq!(back.parts, st.parts);
        assert_eq!(back.rounds(), st.rounds());
        assert_eq!(back.replays(), st.replays());
        assert_eq!(back.model(), st.model());
        // Uninitialized states evict too (nothing to spill but counters).
        let empty = SessionState::new(sp);
        let back = SessionState::from_bytes(sp, &empty.to_bytes()).unwrap();
        assert!(!back.is_initialized());
    }

    #[test]
    fn corrupt_blob_rejected() {
        let sp = spec(18, 2, 3);
        let mut st = SessionState::new(sp);
        for r in rounds_of(&data(18, 6, 1), 3) {
            st.update(&r);
        }
        let mut blob = st.to_bytes();
        blob[0] = b'X';
        assert!(SessionState::from_bytes(sp, &blob).is_err());
        let mut truncated = st.to_bytes();
        truncated.truncate(truncated.len() - 3);
        assert!(SessionState::from_bytes(sp, &truncated).is_err());
    }

    #[test]
    fn transient_chaos_is_bitwise_invisible() {
        let a = data(18, 9, 7);
        let sp = spec(18, 3, 3);
        let mut clean = SessionState::new(sp);
        let mut faulted = SessionState::new(sp);
        let plan =
            FaultPlan::new(77).with_drop_prob(1.0).with_corrupt_prob(0.8).with_delay_prob(0.5, 2);
        let mut drops = 0;
        for r in rounds_of(&a, 3) {
            clean.update(&r);
            let rep = faulted.update_chaos(&r, &plan);
            assert!(!rep.replayed, "transient faults must be absorbed by retries");
            drops += rep.fault.drops;
        }
        assert!(drops > 0, "the schedule must actually have dropped sends");
        assert_eq!(clean.model(), faulted.model());
    }

    #[test]
    fn rank_death_replays_bitwise_from_checkpoints() {
        let a = data(18, 12, 11);
        let sp = spec(18, 2, 3);
        let mut clean = SessionState::new(sp);
        let mut faulted = SessionState::new(sp);
        let mut replays = 0;
        for (i, r) in rounds_of(&a, 3).iter().enumerate() {
            clean.update(r);
            // Kill a rank mid-stream every other round.
            let rep = if i % 2 == 1 {
                let plan = FaultPlan::new(i as u64).with_death(i % 2, 2);
                faulted.update_chaos(r, &plan)
            } else {
                faulted.update(r)
            };
            replays += u64::from(rep.replayed);
        }
        assert!(replays > 0, "the deaths must actually have fired");
        assert_eq!(faulted.replays(), replays);
        assert_eq!(clean.model(), faulted.model());
        // Per-session replay accounting survives eviction + rehydration.
        let back = SessionState::from_bytes(sp, &faulted.to_bytes()).unwrap();
        assert_eq!(back.replays(), replays);
        assert_eq!(back.rounds(), faulted.rounds());
    }

    #[test]
    #[should_panic(expected = "chaos needs ranks >= 2")]
    fn chaos_on_single_rank_rejected() {
        let _ = SessionState::new(SessionSpec::new(2, 16).with_chaos(crate::ChaosSpec::new(1)));
    }
}
