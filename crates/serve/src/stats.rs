//! Server-wide counters and a lock-free query-latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two (log2 nanosecond) latency histogram.
///
/// Recording is one relaxed atomic increment, so the query path stays
/// lock-free; quantiles resolve to the upper edge of the matched bucket
/// (2x resolution — load harnesses wanting exact percentiles measure
/// client-side and use this only as the server's own coarse telemetry).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bucket edge at quantile `q` in [0, 1]; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(Duration::from_nanos(1u64 << i));
            }
        }
        Some(Duration::from_nanos(u64::MAX))
    }

    /// The 99th-percentile bucket edge.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }
}

/// Monotonic server-wide counters (all relaxed atomics: cheap to bump
/// from any worker or client thread, read as a consistent-enough
/// [`StatsSnapshot`] for gates and dashboards).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Sessions opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed.
    pub sessions_closed: AtomicU64,
    /// Snapshots accepted into queues.
    pub snapshots_accepted: AtomicU64,
    /// Submits rejected by queue backpressure.
    pub snapshots_rejected: AtomicU64,
    /// Snapshots incorporated into committed rounds.
    pub snapshots_processed: AtomicU64,
    /// Committed update rounds.
    pub rounds: AtomicU64,
    /// Driver batch incorporations (one per `incorporate_data`-equivalent).
    pub updates: AtomicU64,
    /// Rounds replayed cleanly after a permanent injected fault.
    pub replays: AtomicU64,
    /// Queries answered.
    pub queries: AtomicU64,
    /// Sessions spilled to checkpoint blobs.
    pub evictions: AtomicU64,
    /// Sessions restored from checkpoint blobs.
    pub rehydrations: AtomicU64,
    /// Bytes spilled by evictions.
    pub evicted_bytes: AtomicU64,
    /// Wire messages across all session worlds.
    pub wire_messages: AtomicU64,
    /// Wire bytes across all session worlds.
    pub wire_bytes: AtomicU64,
    /// Transient faults absorbed (drops + delays + corruptions).
    pub faults_absorbed: AtomicU64,
    /// Simulated communication/compute nanoseconds accumulated by session
    /// worlds running under a `NetworkModel`.
    pub sim_comm_nanos: AtomicU64,
    /// Query latencies (coarse; see [`LatencyHistogram`]).
    pub query_latency: LatencyHistogram,
}

/// A plain-value copy of [`ServeStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub snapshots_accepted: u64,
    pub snapshots_rejected: u64,
    pub snapshots_processed: u64,
    pub rounds: u64,
    pub updates: u64,
    pub replays: u64,
    pub queries: u64,
    pub evictions: u64,
    pub rehydrations: u64,
    pub evicted_bytes: u64,
    pub wire_messages: u64,
    pub wire_bytes: u64,
    pub faults_absorbed: u64,
    pub sim_comm_nanos: u64,
}

impl ServeStats {
    /// Read every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            sessions_opened: ld(&self.sessions_opened),
            sessions_closed: ld(&self.sessions_closed),
            snapshots_accepted: ld(&self.snapshots_accepted),
            snapshots_rejected: ld(&self.snapshots_rejected),
            snapshots_processed: ld(&self.snapshots_processed),
            rounds: ld(&self.rounds),
            updates: ld(&self.updates),
            replays: ld(&self.replays),
            queries: ld(&self.queries),
            evictions: ld(&self.evictions),
            rehydrations: ld(&self.rehydrations),
            evicted_bytes: ld(&self.evicted_bytes),
            wire_messages: ld(&self.wire_messages),
            wire_bytes: ld(&self.wire_bytes),
            faults_absorbed: ld(&self.faults_absorbed),
            sim_comm_nanos: ld(&self.sim_comm_nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered() {
        let h = LatencyHistogram::default();
        assert_eq!(h.p99(), None);
        for us in [1u64, 2, 4, 100, 1000] {
            for _ in 0..20 {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= p99);
        assert!(p99 >= Duration::from_micros(1000), "p99 must reach the slow bucket");
        assert!(p50 <= Duration::from_micros(8), "p50 stays near the fast buckets");
    }

    #[test]
    fn snapshot_reads_counters() {
        let s = ServeStats::default();
        s.rounds.fetch_add(3, Ordering::Relaxed);
        s.queries.fetch_add(7, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.rounds, 3);
        assert_eq!(snap.queries, 7);
        assert_eq!(snap.replays, 0);
    }
}
