//! Burgers validation — the paper's Section 4.3 first experiment and the
//! source of Figure 1(a,b): compare the serial streaming SVD against the
//! parallel (4-rank) + randomized streaming SVD on snapshots of the viscous
//! Burgers equation, mode by mode.
//!
//! ```text
//! cargo run --release --example burgers_validation           # scaled down
//! cargo run --release --example burgers_validation -- --full # paper size (16384 x 800)
//! ```
//!
//! Writes `burgers_mode{1,2}.csv` with columns
//! `x, serial, parallel, abs_error` — the exact series of Figure 1(a,b).

use pyparsvd::core::postprocess::{sparkline, write_series_csv};
use pyparsvd::data::burgers::{snapshot_matrix, BurgersConfig};
use pyparsvd::data::partition::split_rows;
use pyparsvd::linalg::validate::{align_signs, pointwise_mode_error};
use pyparsvd::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        BurgersConfig::default() // 16384 grid points, 800 snapshots
    } else {
        BurgersConfig { grid_points: 2048, snapshots: 200, ..BurgersConfig::default() }
    };
    println!(
        "Burgers snapshots: {} grid points x {} snapshots (Re = {})",
        cfg.grid_points, cfg.snapshots, cfg.reynolds
    );
    let data = snapshot_matrix(&cfg);

    let k = 10;
    let batch = cfg.snapshots / 4;
    let svd_cfg = SvdConfig::new(k).with_forget_factor(0.95).with_r1(50).with_r2(k.max(10));

    // Serial streaming run.
    let mut serial = SerialStreamingSvd::new(svd_cfg);
    serial.fit_batched(&data, batch);
    println!("serial streaming done ({} batches)", serial.iteration() + 1);

    // Parallel + randomized streaming run on 4 ranks, as in the paper.
    let n_ranks = 4;
    let blocks = split_rows(&data, n_ranks);
    let world = World::new(n_ranks);
    let par_cfg = svd_cfg.with_low_rank(true).with_power_iterations(2).with_seed(1);
    let out = world.run(|comm| {
        let mut driver = ParallelStreamingSvd::new(comm, par_cfg);
        driver.fit_batched(&blocks[comm.rank()], batch);
        (driver.gather_modes(0), driver.singular_values().to_vec())
    });
    let par_modes = out[0].0.clone().expect("rank 0 gathers the global modes");
    println!(
        "parallel streaming done: {} messages, {} bytes moved",
        world.stats().total_messages(),
        world.stats().total_bytes()
    );

    // Figure 1(a,b): first and second singular vectors, serial vs parallel.
    let grid = cfg.grid();
    let aligned = align_signs(serial.modes(), &par_modes);
    for mode in 0..2 {
        let serial_mode = serial.modes().col(mode);
        let par_mode = aligned.col(mode);
        let err = pointwise_mode_error(serial.modes(), &par_modes, mode);
        let max_err = err.iter().cloned().fold(0.0, f64::max);
        println!("\nmode {}:", mode + 1);
        println!("  serial   {}", sparkline(&serial_mode, 60));
        println!("  parallel {}", sparkline(&par_mode, 60));
        println!("  max |serial - parallel| = {max_err:.3e}");
        let path = std::path::PathBuf::from(format!("burgers_mode{}.csv", mode + 1));
        write_series_csv(
            &path,
            &grid,
            &["serial", "parallel", "abs_error"],
            &[&serial_mode, &par_mode, &err],
        )
        .expect("write csv");
        println!("  wrote {}", path.display());
    }

    println!("\nsingular values (serial vs parallel):");
    for (i, (s, p)) in serial.singular_values().iter().zip(&out[0].1).enumerate().take(5) {
        println!("  sigma_{i}: {s:.6e} vs {p:.6e}");
    }
}
