//! ERA5-style coherent-structure extraction — the paper's science
//! demonstration (Figure 2), with the parallel-IO path exercised end to
//! end:
//!
//! 1. generate a synthetic global-pressure dataset with planted modes;
//! 2. write it to an `ncsim` container (the NetCDF4 stand-in);
//! 3. each of 8 ranks reads *only its own hyperslab* from the file;
//! 4. run the distributed streaming SVD;
//! 5. gather the modes and verify they recover the planted structures.
//!
//! ```text
//! cargo run --release --example era5_coherent_structures
//! ```

use pyparsvd::core::postprocess::{sparkline, write_modes_csv};
use pyparsvd::data::era5::{generate, Era5Config};
use pyparsvd::data::ncsim::{self, NcsimReader};
use pyparsvd::linalg::validate::max_principal_angle;
use pyparsvd::prelude::*;

fn main() {
    let cfg = Era5Config {
        nlon: 72,
        nlat: 48,
        snapshots: 512,
        n_modes: 4,
        noise_level: 0.05,
        ..Era5Config::default()
    };
    println!(
        "synthetic ERA5 pressure: {} x {} grid, {} snapshots, {} planted modes",
        cfg.nlat, cfg.nlon, cfg.snapshots, cfg.n_modes
    );
    let dataset = generate(&cfg);

    // Parallel-IO path: one file, per-rank hyperslab reads.
    let path = std::env::temp_dir().join(format!("era5_demo_{}.ncs", std::process::id()));
    ncsim::write(&path, "surface_pressure", &dataset.snapshots).expect("write ncsim");
    println!("wrote {} ({} MB)", path.display(), dataset.snapshots.byte_mb());

    let n_ranks = 8;
    // Track buffer modes beyond the structures of interest: per-batch
    // truncation at exactly n_modes would slowly distort the weakest mode,
    // so give the stream headroom (standard practice for streaming PCA).
    let k = cfg.n_modes + 4;
    let svd_cfg = SvdConfig::new(k).with_forget_factor(1.0).with_r1(64).with_r2(16);
    let world = World::new(n_ranks);
    let path_ref = &path;
    let out = world.run(|comm| {
        // Each rank opens the file independently and reads its row block —
        // the access pattern of NetCDF4 parallel IO.
        let mut reader = NcsimReader::open(path_ref).expect("open ncsim");
        let local = reader.read_rank_block(comm.size(), comm.rank()).expect("hyperslab read");
        let mut driver = ParallelStreamingSvd::new(comm, svd_cfg);
        driver.fit_batched(&local, 128);
        (driver.gather_modes(0), driver.singular_values().to_vec())
    });
    std::fs::remove_file(&path).ok();

    let modes = out[0].0.clone().expect("rank 0 gathers");
    let s = &out[0].1;
    println!(
        "distributed run: {} messages, {:.1} kB total traffic",
        world.stats().total_messages(),
        world.stats().total_bytes() as f64 / 1024.0
    );

    println!(
        "\nleading singular values: {:?}",
        s.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    // Per-mode recovery: the strongest planted structures must align almost
    // perfectly; the weakest sits near the noise floor (sigma ~ 30 vs noise
    // sigma ~ 11), so Davis–Kahan predicts a visibly larger angle there.
    println!("per-mode recovery angles:");
    for j in 0..cfg.n_modes {
        let planted = Matrix::from_columns(&[dataset.true_modes.col(j)]);
        let got = Matrix::from_columns(&[modes.col(j)]);
        let a = max_principal_angle(&planted, &got);
        println!("  mode {}: {a:.4} rad", j + 1);
        if j < 2 {
            assert!(a < 0.15, "leading planted structures should be recovered, mode {j} angle {a}");
        }
    }
    let angle = max_principal_angle(&dataset.true_modes, &modes.first_columns(cfg.n_modes));
    println!(
        "full {}-mode subspace angle: {angle:.4} rad (limited by the weakest mode)",
        cfg.n_modes
    );

    // Figure-2-style output: first two modes as lat-lon fields.
    for mode in 0..2 {
        let col = modes.col(mode);
        println!("\nmode {} (zonal profile at mid-latitude):", mode + 1);
        let mid_lat = cfg.nlat / 2;
        let zonal: Vec<f64> = (0..cfg.nlon).map(|j| col[mid_lat * cfg.nlon + j]).collect();
        println!("  {}", sparkline(&zonal, 64));
    }
    let out_csv = std::path::PathBuf::from("era5_modes.csv");
    write_modes_csv(&out_csv, &modes).expect("write modes csv");
    println!(
        "\nwrote {} (reshape each column to {} x {} for maps)",
        out_csv.display(),
        cfg.nlat,
        cfg.nlon
    );
}

/// Small display helper: matrix size in MB.
trait ByteMb {
    fn byte_mb(&self) -> usize;
}

impl ByteMb for Matrix {
    fn byte_mb(&self) -> usize {
        self.rows() * self.cols() * 8 / (1024 * 1024)
    }
}
