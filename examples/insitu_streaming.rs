//! In-situ distributed streaming SVD — the paper's motivating deployment:
//! a domain-decomposed simulation produces data that is analyzed *as it is
//! computed*, without ever assembling (or storing) the global snapshot
//! matrix.
//!
//! Four ranks each own a block of the Burgers grid. Every time step they
//! exchange one halo value per side (point-to-point messages over the same
//! communicator the SVD uses) and advance their block with the explicit
//! solver; at uniform *time* intervals each rank appends its local state to
//! a snapshot buffer, and whenever a batch fills, the distributed streaming
//! SVD absorbs it in place.
//!
//! At the end, the in-situ modes are validated against an offline SVD of
//! analytical snapshots over the same time window.
//!
//! Parameters are chosen so the explicit scheme can traverse the full
//! window: the stable step is diffusion-limited at `dx²/(2ν)`, so grid
//! resolution and Reynolds number trade against step count.
//!
//! ```text
//! cargo run --release --example insitu_streaming
//! ```

use pyparsvd::data::burgers::{snapshot_matrix, BurgersConfig};
use pyparsvd::data::partition::block_range;
use pyparsvd::data::solver::{stable_dt, step_with_halos};
use pyparsvd::linalg::validate::max_principal_angle;
use pyparsvd::prelude::*;

const TAG_HALO_LEFT: u64 = 1; // carries a value to the left neighbour
const TAG_HALO_RIGHT: u64 = 2; // carries a value to the right neighbour

fn main() {
    let cfg = BurgersConfig {
        grid_points: 512,
        snapshots: 160,
        reynolds: 100.0,
        ..BurgersConfig::default()
    };
    let k = 6;
    let batch = 20;
    let n_ranks = 4;
    let svd_cfg = SvdConfig::new(k).with_forget_factor(1.0).with_r1(50).with_r2(12);

    println!(
        "in-situ Burgers: {} points over {} ranks, Re = {}, {} snapshots over t in [0, {}]",
        cfg.grid_points, n_ranks, cfg.reynolds, cfg.snapshots, cfg.final_time
    );

    let world = World::new(n_ranks);
    let out = world.run(|comm| {
        let rank = comm.rank();
        let size = comm.size();
        let (r0, r1) = block_range(cfg.grid_points, size, rank);
        let grid = cfg.grid();
        let nu = 1.0 / cfg.reynolds;
        let dx = cfg.length / (cfg.grid_points - 1) as f64;

        // Local state from the analytical initial condition.
        let mut u: Vec<f64> = grid[r0..r1]
            .iter()
            .map(|&x| pyparsvd::data::burgers::analytical_solution(x, 0.0, cfg.reynolds))
            .collect();

        // Fixed stable step from the *global* initial velocity bound
        // (viscous Burgers dissipates, so the bound holds for all time).
        let local_max = u.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        let global_max = comm.allreduce_max(local_max);
        let dt = stable_dt(dx, nu, global_max.max(1e-6));

        let sample_dt = cfg.final_time / cfg.snapshots as f64;
        let mut driver = ParallelStreamingSvd::new(comm, svd_cfg);
        let mut buffer: Vec<Vec<f64>> = Vec::with_capacity(batch);
        let mut sampled = 0;
        let mut time = 0.0;
        let mut step_count = 0usize;

        while sampled < cfg.snapshots {
            // Halo exchange: send boundary values to neighbours, receive
            // theirs (domain boundaries substitute zeros).
            if rank > 0 {
                comm.send(u[0], rank - 1, TAG_HALO_LEFT);
            }
            if rank + 1 < size {
                comm.send(*u.last().expect("nonempty block"), rank + 1, TAG_HALO_RIGHT);
            }
            let left = if rank > 0 { comm.recv::<f64>(rank - 1, TAG_HALO_RIGHT) } else { 0.0 };
            let right =
                if rank + 1 < size { comm.recv::<f64>(rank + 1, TAG_HALO_LEFT) } else { 0.0 };

            u = step_with_halos(&u, left, right, nu, dx, dt);
            if rank == 0 {
                u[0] = 0.0;
            }
            if rank + 1 == size {
                *u.last_mut().expect("nonempty") = 0.0;
            }
            time += dt;
            step_count += 1;

            // Sample at uniform time intervals.
            if time >= (sampled + 1) as f64 * sample_dt {
                buffer.push(u.clone());
                sampled += 1;
                if buffer.len() == batch || sampled == cfg.snapshots {
                    let cols: Vec<Vec<f64>> = std::mem::take(&mut buffer);
                    let block = Matrix::from_columns(&cols);
                    if driver.is_initialized() {
                        driver.incorporate_data(&block);
                    } else {
                        driver.initialize(&block);
                    }
                }
            }
        }
        (driver.gather_modes(0), driver.singular_values().to_vec(), step_count)
    });

    let modes = out[0].0.clone().expect("rank 0 gathers");
    println!(
        "simulation complete: {} solver steps/rank, {} messages total ({:.0} kB)",
        out[0].2,
        world.stats().total_messages(),
        world.stats().total_bytes() as f64 / 1024.0
    );
    println!("in-situ singular values: {:?}", &out[0].1[..4.min(out[0].1.len())]);

    // Offline reference: SVD of analytical snapshots over the same window.
    // The in-situ data carries the first-order scheme's O(dx) error, so
    // compare the leading subspace with a modest tolerance.
    let reference = snapshot_matrix(&cfg);
    let f = pyparsvd::linalg::svd(&reference);
    println!("offline singular values: {:?}", &f.s[..4]);
    let angle = max_principal_angle(&f.u.first_columns(2), &modes.first_columns(2));
    println!("angle between in-situ and offline analytical leading modes: {angle:.3} rad");
    assert!(
        angle < 0.2,
        "in-situ modes should resemble the offline analytical modes (angle {angle})"
    );
    println!("ok: coherent structures extracted in situ, no global matrix ever assembled");
}
