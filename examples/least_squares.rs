//! Least-squares fitting via the SVD pseudoinverse — the "matrix
//! computation platform" applications of the paper's Section 2.
//!
//! Fits a polynomial + sinusoid model to noisy samples three ways and shows
//! they agree; then demonstrates the minimum-norm property on a
//! rank-deficient design matrix, where naive normal equations fail.
//!
//! ```text
//! cargo run --release --example least_squares
//! ```

use pyparsvd::linalg::gemm::matvec;
use pyparsvd::linalg::pinv::{lstsq, pseudoinverse};
use pyparsvd::linalg::random::{seeded_rng, StandardNormal};
use pyparsvd::prelude::*;
use rand::distributions::Distribution;

fn main() {
    let n_samples = 200;
    let mut rng = seeded_rng(4);
    let normal = StandardNormal;

    // Ground truth: y = 2 + 0.5 t - 0.1 t² + 1.5 sin(t).
    let true_coeffs = [2.0, 0.5, -0.1, 1.5];
    let t: Vec<f64> = (0..n_samples).map(|i| i as f64 * 10.0 / n_samples as f64).collect();
    let design = Matrix::from_fn(n_samples, 4, |i, j| match j {
        0 => 1.0,
        1 => t[i],
        2 => t[i] * t[i],
        _ => t[i].sin(),
    });
    let y: Vec<f64> = (0..n_samples)
        .map(|i| {
            let clean: f64 = (0..4).map(|j| true_coeffs[j] * design[(i, j)]).sum();
            clean + 0.05 * normal.sample(&mut rng)
        })
        .collect();

    // Route 1: dedicated least-squares solver (SVD-based, minimum norm).
    let sol = lstsq(&design, &y);
    println!("lstsq coefficients  : {:?}", round4(&sol.x));
    println!("residual norm       : {:.4}", sol.residual_norm);
    println!("effective rank      : {}", sol.rank);

    // Route 2: explicit pseudoinverse A⁺ y.
    let pinv = pseudoinverse(&design);
    let x2 = matvec(&pinv, &y);
    println!("pseudoinverse route : {:?}", round4(&x2));

    for (a, b) in sol.x.iter().zip(&x2) {
        assert!((a - b).abs() < 1e-9, "both routes must agree");
    }
    for (got, want) in sol.x.iter().zip(&true_coeffs) {
        assert!((got - want).abs() < 0.05, "coefficient {got} vs truth {want}");
    }
    println!("-> recovered the generating coefficients {true_coeffs:?}\n");

    // Rank-deficient design: duplicate predictor columns. The SVD solution
    // splits the weight evenly (minimum norm); normal equations would hit a
    // singular matrix.
    let deficient = Matrix::from_fn(n_samples, 3, |i, j| match j {
        0 => 1.0,
        _ => t[i], // columns 1 and 2 identical
    });
    let y2: Vec<f64> = (0..n_samples).map(|i| 1.0 + 3.0 * t[i]).collect();
    let sol2 = lstsq(&deficient, &y2);
    println!("rank-deficient design (duplicate predictors):");
    println!("  coefficients : {:?}", round4(&sol2.x));
    println!("  rank         : {} of 3 columns", sol2.rank);
    assert_eq!(sol2.rank, 2);
    assert!((sol2.x[1] - 1.5).abs() < 1e-8, "weight split evenly: {:?}", sol2.x);
    assert!((sol2.x[2] - 1.5).abs() < 1e-8);
    assert!(sol2.residual_norm < 1e-8);
    println!("  -> minimum-norm solution splits the duplicated weight 1.5/1.5, residual ~ 0");
}

fn round4(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1e4).round() / 1e4).collect()
}
