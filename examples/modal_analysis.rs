//! Modal analysis toolbox tour: POD vs DMD vs SPOD on the same dataset.
//!
//! Section 2 of the paper motivates the SVD through this family of
//! data-driven decompositions. Here a synthetic flow-like field combines a
//! *traveling* wave (advecting structure, frequency f1) and a *standing*
//! oscillation (frequency f2) plus noise, and each method reveals what it
//! is built to see:
//!
//! - **POD** (energy-ranked spatial structures): needs two real modes per
//!   traveling wave;
//! - **DMD** (linear dynamics): isolates each oscillation's complex
//!   eigenvalue — read off the frequencies;
//! - **SPOD** (frequency-resolved POD): shows the energy concentrated at
//!   f1 and f2, with the traveling wave captured by a single complex mode.
//!
//! (Each oscillation carries two independent spatial patterns — its cos and
//! sin quadratures — because a pure one-pattern "cos(ωt)" signal is not the
//! output of any linear evolution and would defeat DMD by construction.)
//!
//! ```text
//! cargo run --release --example modal_analysis
//! ```

use pyparsvd::core::dmd::dmd;
use pyparsvd::core::pod::pod;
use pyparsvd::core::postprocess::sparkline;
use pyparsvd::core::spod::{spod, SpodConfig};
use pyparsvd::linalg::random::{seeded_rng, StandardNormal};
use pyparsvd::prelude::*;
use rand::distributions::Distribution;

fn main() {
    let m = 128; // grid points
    let n = 1024; // snapshots
    let dt = 0.05;
    let f1 = 1.2; // traveling wave frequency (cycles/unit time)
    let f2 = 2.7; // second (elliptic/standing-like) oscillation frequency
    let tau = 2.0 * std::f64::consts::PI;

    let mut rng = seeded_rng(7);
    let normal = StandardNormal;
    let mut data = Matrix::zeros(m, n);
    for t in 0..n {
        let time = t as f64 * dt;
        for i in 0..m {
            let x = i as f64 / m as f64 * tau;
            let traveling = 2.0 * (3.0 * x - tau * f1 * time).cos();
            let standing = 1.0 * (5.0 * x).sin() * (tau * f2 * time).cos()
                + 0.4 * (9.0 * x).cos() * (tau * f2 * time).sin();
            data[(i, t)] = traveling + standing + 0.05 * normal.sample(&mut rng);
        }
    }
    println!("dataset: {m} x {n}, traveling wave at {f1} Hz + oscillating structure at {f2} Hz + noise\n");

    // --- POD ---
    let p = pod(&data, 6);
    println!(
        "POD singular values: {:?}",
        p.singular_values.iter().map(|v| (v * 10.0).round() / 10.0).collect::<Vec<_>>()
    );
    println!("  (the traveling wave consumes TWO energy-paired real modes: sigma_1 ~ sigma_2)");
    println!("  mode 1: {}", sparkline(&p.modes.col(0), 64));
    println!("  mode 2: {}", sparkline(&p.modes.col(1), 64));

    // --- DMD ---
    let d = dmd(&data, 6, dt);
    let mut freqs: Vec<f64> = d.frequencies().iter().map(|f| f.abs()).collect();
    freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    freqs.dedup_by(|a, b| (*a - *b).abs() < 0.05);
    println!(
        "\nDMD frequencies (cycles/unit time): {:?}",
        freqs.iter().map(|f| (f * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    let found_f1 = freqs.iter().any(|&f| (f - f1).abs() < 0.05);
    let found_f2 = freqs.iter().any(|&f| (f - f2).abs() < 0.05);
    assert!(found_f1 && found_f2, "DMD must isolate both planted frequencies");
    println!("  -> both planted frequencies isolated as complex eigenvalues");

    // --- SPOD ---
    let s = spod(&data, &SpodConfig::new(128, dt).with_n_modes(2));
    let spectrum = s.spectrum();
    println!("\nSPOD spectrum (energy vs frequency):");
    let energies: Vec<f64> = spectrum.iter().map(|(_, e)| *e).collect();
    println!("  {}", sparkline(&energies, 65));
    // Peaks at the planted frequencies?
    let near = |target: f64| {
        spectrum
            .iter()
            .filter(|(f, _)| (f - target).abs() < 0.2)
            .map(|(_, e)| *e)
            .fold(0.0, f64::max)
    };
    let background: f64 = energies.iter().sum::<f64>() / energies.len() as f64;
    println!(
        "  energy at {f1} Hz: {:.2} | at {f2} Hz: {:.2} | spectrum mean: {background:.2}",
        near(f1),
        near(f2)
    );
    assert!(near(f1) > 5.0 * background, "SPOD must peak at the traveling-wave frequency");
    assert!(near(f2) > 2.0 * background, "SPOD must peak at the second frequency");

    // The traveling wave needs ONE complex SPOD mode (energies of the peak
    // bin are strongly ordered), unlike POD's paired real modes.
    let peak_bin = s
        .frequencies
        .iter()
        .max_by(|a, b| {
            a.energies.iter().sum::<f64>().partial_cmp(&b.energies.iter().sum::<f64>()).unwrap()
        })
        .expect("nonempty spectrum");
    println!(
        "  peak bin modal energies: [{:.2}, {:.2}] -> single complex mode carries the wave",
        peak_bin.energies[0], peak_bin.energies[1]
    );
    println!("\nok: three SVD-based decompositions, one substrate");
}
