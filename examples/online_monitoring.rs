//! Online monitoring — the "SVD on the fly" use case from the paper's
//! Section 2: track the leading coherent structures of a *non-stationary*
//! stream and watch the forget factor trade memory for adaptivity.
//!
//! A simulated sensor field drifts between two regimes. Two streaming SVDs
//! consume the same batches: one with `ff = 1.0` (infinite memory) and one
//! with `ff = 0.7` (fast forgetting). After the regime change, the
//! forgetting tracker realigns with the new dominant structure much sooner.
//!
//! ```text
//! cargo run --release --example online_monitoring
//! ```

use pyparsvd::linalg::random::{gaussian_matrix, seeded_rng};
use pyparsvd::linalg::validate::max_principal_angle;
use pyparsvd::prelude::*;

/// One batch of the drifting field: a dominant spatial structure (regime A
/// or B) plus isotropic noise.
fn make_batch(
    regime_mode: &[f64],
    amplitude: f64,
    noise: f64,
    batch: usize,
    rng: &mut impl rand::Rng,
) -> Matrix {
    let m = regime_mode.len();
    let mut data = gaussian_matrix(m, batch, rng).scaled(noise);
    for j in 0..batch {
        let coeff = amplitude * (1.0 + 0.1 * (j as f64).sin());
        for (i, &mode_i) in regime_mode.iter().enumerate() {
            data[(i, j)] += coeff * mode_i;
        }
    }
    data
}

fn unit(v: Vec<f64>) -> Vec<f64> {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    v.into_iter().map(|x| x / n).collect()
}

fn main() {
    let m = 1024;
    let batch = 16;
    let k = 3;
    let mut rng = seeded_rng(42);

    // Two orthogonal-ish regimes.
    let mode_a = unit((0..m).map(|i| (i as f64 * 0.02).sin()).collect());
    let mode_b = unit((0..m).map(|i| (i as f64 * 0.11).cos()).collect());
    let basis_a = Matrix::from_columns(std::slice::from_ref(&mode_a));
    let basis_b = Matrix::from_columns(std::slice::from_ref(&mode_b));

    let mut remember = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
    let mut forget = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(0.7));

    println!("batch | regime | angle-to-current (ff=1.0) | angle-to-current (ff=0.7)");
    let total_batches = 30;
    for b in 0..total_batches {
        let in_regime_a = b < total_batches / 2;
        let mode = if in_regime_a { &mode_a } else { &mode_b };
        let data = make_batch(mode, 5.0, 0.2, batch, &mut rng);
        for s in [&mut remember, &mut forget] {
            if s.is_initialized() {
                s.incorporate_data(&data);
            } else {
                s.initialize(&data);
            }
        }
        let current = if in_regime_a { &basis_a } else { &basis_b };
        let a1 = max_principal_angle(current, &remember.modes().first_columns(1));
        let a2 = max_principal_angle(current, &forget.modes().first_columns(1));
        let marker = if b == total_batches / 2 { "  <-- regime change" } else { "" };
        println!("{b:5} | {} |{a1:26.4} |{a2:26.4}{marker}", if in_regime_a { "A" } else { "B" });
    }

    let a_remember = max_principal_angle(&basis_b, &remember.modes().first_columns(1));
    let a_forget = max_principal_angle(&basis_b, &forget.modes().first_columns(1));
    println!("\nfinal alignment with the live regime:");
    println!("  ff = 1.0 : {a_remember:.4} rad (still anchored to history)");
    println!("  ff = 0.7 : {a_forget:.4} rad (tracking the present)");
    assert!(
        a_forget < a_remember,
        "the forgetting tracker should align better with the current regime"
    );
}
