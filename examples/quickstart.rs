//! Quickstart: stream a snapshot matrix through the serial driver and
//! compare against the one-shot truncated SVD.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pyparsvd::core::postprocess::summarize;
use pyparsvd::linalg::random::{matrix_with_spectrum, seeded_rng};
use pyparsvd::linalg::validate::{max_principal_angle, spectrum_error};
use pyparsvd::prelude::*;

fn main() {
    // A 2000 x 120 snapshot matrix with a geometrically decaying spectrum —
    // the "coherent structures + noise floor" shape the paper targets.
    let spectrum: Vec<f64> = (0..60).map(|i| 10.0 * 0.85f64.powi(i)).collect();
    let data = matrix_with_spectrum(2000, 120, &spectrum, &mut seeded_rng(7));
    println!("data matrix: {} x {}", data.rows(), data.cols());

    // Stream it in batches of 20 snapshots, tracking the 8 leading modes.
    let k = 8;
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
    let mut seen = 0;
    while seen < data.cols() {
        let end = (seen + 20).min(data.cols());
        let batch = data.submatrix(0, data.rows(), seen, end);
        if svd.is_initialized() {
            svd.incorporate_data(&batch);
        } else {
            svd.initialize(&batch);
        }
        seen = end;
        println!(
            "  after {:3} snapshots: sigma_0 = {:.4}, sigma_{} = {:.4}",
            seen,
            svd.singular_values()[0],
            k - 1,
            svd.singular_values()[k - 1]
        );
    }

    // Reference: one-shot truncated SVD of everything at once.
    let (u_ref, s_ref) = batch_truncated_svd(&data, k);
    println!("\nstreaming vs one-shot:");
    println!("  spectrum error      : {:.3e}", spectrum_error(&s_ref, svd.singular_values()));
    println!("  max principal angle : {:.3e} rad", max_principal_angle(&u_ref, svd.modes()));

    println!("\n{}", summarize(svd.singular_values(), svd.modes(), 3));
}
