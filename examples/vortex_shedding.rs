//! Vortex-shedding analysis — DMD on a synthetic cylinder wake, the
//! canonical modal-decomposition flow (Schmid 2010 introduced DMD on
//! exactly this configuration).
//!
//! The wake generator plants a steady base flow, a fundamental shedding
//! mode at `f_s`, and its first harmonic at `2 f_s`, optionally growing at
//! a known exponential rate (the instability's pre-saturation phase). DMD
//! must read all of it back from raw snapshots:
//!
//! ```text
//! cargo run --release --example vortex_shedding
//! ```

use pyparsvd::core::dmd::dmd;
use pyparsvd::core::pod::pod;
use pyparsvd::core::postprocess::{sparkline, write_mode_pgm};
use pyparsvd::data::wake::{generate, WakeConfig};

fn main() {
    let cfg = WakeConfig {
        nx: 128,
        ny: 64,
        snapshots: 384,
        growth_rate: 0.08, // mild transient growth before saturation
        ..WakeConfig::default()
    };
    println!(
        "synthetic cylinder wake: {} x {} grid, {} snapshots, shedding at {} Hz (+harmonic), growth 0.08",
        cfg.nx, cfg.ny, cfg.snapshots, cfg.shedding_frequency
    );
    let data = generate(&cfg);

    // POD first: energy ranking (the oscillatory pairs show up as twins).
    let p = pod(&data, 5);
    println!(
        "\nPOD singular values: {:?}",
        p.singular_values.iter().map(|v| (v * 10.0).round() / 10.0).collect::<Vec<_>>()
    );

    // DMD: dynamics. Frequencies, growth rates, and modes.
    let d = dmd(&data, 5, cfg.dt);
    println!("\nDMD eigenvalue analysis (rank {}):", d.rank);
    println!("{:>12} {:>12} {:>14}", "freq (Hz)", "growth", "|amplitude|");
    let mut rows: Vec<(f64, f64, f64)> = d
        .continuous_eigenvalues()
        .iter()
        .zip(&d.amplitudes)
        .map(|(w, b)| (w.im / (2.0 * std::f64::consts::PI), w.re, b.abs()))
        .collect();
    rows.sort_by(|a, b| a.0.abs().partial_cmp(&b.0.abs()).unwrap());
    for (f, g, amp) in &rows {
        println!("{f:>12.4} {g:>12.4} {amp:>14.3}");
    }

    let f_s = cfg.shedding_frequency;
    let has = |target: f64, tol: f64| rows.iter().any(|(f, _, _)| (f.abs() - target).abs() < tol);
    assert!(has(0.0, 1e-3), "steady base-flow eigenvalue missing");
    assert!(has(f_s, 0.02), "fundamental missing");
    assert!(has(2.0 * f_s, 0.04), "harmonic missing");
    let fundamental =
        rows.iter().find(|(f, _, _)| (f.abs() - f_s).abs() < 0.02).expect("fundamental");
    assert!(
        (fundamental.1 - cfg.growth_rate).abs() < 0.01,
        "planted growth rate should be measured: {} vs {}",
        fundamental.1,
        cfg.growth_rate
    );
    println!(
        "\n-> recovered: steady mode, fundamental at {:.3} Hz growing at {:.3}, harmonic at {:.3} Hz",
        fundamental.0.abs(),
        fundamental.1,
        2.0 * f_s
    );

    // Mode maps: centerline profile of the fundamental's real part, plus a
    // PGM image of the full 2-D structure.
    let fund_idx = d
        .continuous_eigenvalues()
        .iter()
        .position(|w| (w.im / (2.0 * std::f64::consts::PI) - f_s).abs() < 0.02)
        .expect("fundamental index");
    let mode_re = d.modes.real_part();
    let centerline: Vec<f64> =
        (0..cfg.nx).map(|ix| mode_re[((cfg.ny / 2 - 3) * cfg.nx + ix, fund_idx)]).collect();
    println!("\nfundamental mode, off-center streamwise profile:");
    println!("  {}", sparkline(&centerline, 72));

    let pgm = std::path::PathBuf::from("wake_fundamental_mode.pgm");
    write_mode_pgm(&pgm, &mode_re, fund_idx, cfg.ny, cfg.nx).expect("write pgm");
    println!("wrote {} ({} x {} grayscale map)", pgm.display(), cfg.ny, cfg.nx);

    // Reconstruction closes the loop.
    let err = d.reconstruction_error(&data);
    println!("DMD reconstruction error over all snapshots: {err:.2e}");
    assert!(err < 1e-4, "rank-5 DMD should reconstruct the rank-5 wake");
}
