#!/usr/bin/env bash
# GEMM kernel-scaling benchmark + lint gate.
#
# Runs the packed-vs-reference GEMM scaling sweep and writes the results to
# BENCH_gemm.json at the repo root, then runs clippy over the whole
# workspace with warnings denied. Intended both for CI (quick mode,
# default) and for full perf runs on real hardware:
#
#   scripts/bench_gemm.sh            # quick sweep (~seconds) + clippy
#   scripts/bench_gemm.sh --full     # full sweep incl. 1024^3 and 65536x64
#
# The JSON records the selected micro-kernel (PSVD_GEMM_KERNEL or CPU
# detection), the resolved MC/KC/NC blocking and its source
# (default/tuned/profile per PSVD_GEMM_TUNE), one-thread GFLOP/s for every
# available kernel, and per-(case, threads) bitwise-determinism checks for
# the selected kernel. Both env vars pass straight through this script:
#
#   PSVD_GEMM_KERNEL=scalar scripts/bench_gemm.sh        # pin the oracle
#   PSVD_GEMM_TUNE=1 scripts/bench_gemm.sh --full        # autotune first
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin gemm_scaling -- $MODE --out BENCH_gemm.json

cargo clippy --workspace --all-targets -- -D warnings
echo "bench_gemm: OK (BENCH_gemm.json written, clippy clean)"
