#!/usr/bin/env bash
# GEMM kernel-scaling benchmark + lint gate.
#
# Runs the packed-vs-reference GEMM scaling sweep and writes the results to
# BENCH_gemm.json at the repo root, then runs clippy over the whole
# workspace with warnings denied. Intended both for CI (quick mode,
# default) and for full perf runs on real hardware:
#
#   scripts/bench_gemm.sh            # quick sweep (~seconds) + clippy
#   scripts/bench_gemm.sh --full     # full sweep incl. 1024^3 and 65536x64
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin gemm_scaling -- $MODE --out BENCH_gemm.json

cargo clippy --workspace --all-targets -- -D warnings
echo "bench_gemm: OK (BENCH_gemm.json written, clippy clean)"
