#!/usr/bin/env bash
# Out-of-core IO pipeline benchmark.
#
# Writes a chunked ncsim v2 file (shuffle+RLE codec) and streams it back
# through SerialStreamingSvd::fit_source three ways — in-core, blocking
# (PSVD_PREFETCH_DEPTH=0 semantics) and prefetched (depth 2) — at 1 and 4
# compute threads, writing wall time, bytes read and the compute-stall
# fraction to BENCH_io.json at the repo root. Gated inside the harness:
# prefetch legs hide IO under compute (stall fraction < 0.15), blocking
# legs do not (> 0.90), the streamed bytes are >= 4x the resident ingest
# footprint, and every out-of-core run is bitwise identical (singular
# values and modes) to the in-core run. Intended both for CI (quick mode,
# default) and for full perf runs on real hardware:
#
#   scripts/bench_io.sh           # quick run (~seconds): 12000x96 stream
#   scripts/bench_io.sh --full    # full run: 60000x128 stream
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin io_pipeline -- $MODE --out BENCH_io.json

echo "bench_io: OK (BENCH_io.json written)"
