#!/usr/bin/env bash
# Mixed-precision streaming benchmark.
#
# Runs the distributed streaming SVD over the same Burgers snapshot stream
# at each precision mode (f64 / mixed / f32) and writes wall time, wire
# bytes and singular-value accuracy to BENCH_mixed.json at the repo root.
# Two contracts are gated inside the harness: the mixed leg moves
# 0.40-0.60x the f64 leg's wire bytes, and its singular values stay within
# 1e-5 * sigma_max of the f64 oracle. Intended both for CI (quick mode,
# default) and for full perf runs on real hardware:
#
#   scripts/bench_mixed.sh           # quick run (~seconds): 512x64 stream
#   scripts/bench_mixed.sh --full    # full run: 4096x256 stream, 8 ranks
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin mixed_precision -- $MODE --out BENCH_mixed.json

echo "bench_mixed: OK (BENCH_mixed.json written)"
