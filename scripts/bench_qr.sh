#!/usr/bin/env bash
# Thin-QR scaling benchmark: blocked compact-WY vs unblocked reference.
#
# Runs the QR scaling sweep (including the 16384x128 acceptance shape) and
# writes the results to BENCH_qr.json at the repo root. Quick mode trims
# the satellite shapes but keeps the acceptance shape:
#
#   scripts/bench_qr.sh            # quick sweep (CI smoke mode)
#   scripts/bench_qr.sh --full     # full sweep incl. 65536x64 and 512^2
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin qr_scaling -- $MODE --out BENCH_qr.json
echo "bench_qr: OK (BENCH_qr.json written)"
