#!/usr/bin/env bash
# SVD-as-a-service load benchmark.
#
# Drives one SvdServer through three phases — an idle query-latency probe,
# a fleet of tenants streamed under a resident cap of a quarter of the
# fleet (with simulated-network and seeded-chaos slices), and a contended
# probe storming a light tenant's queries while a heavy multi-rank tenant
# grinds rounds on the worker pool — and writes throughput, latency
# percentiles and the service ledger to BENCH_serve.json at the repo
# root. Gated inside the harness: every accepted snapshot is processed
# after flush + drain, the cap forces evictions and queries force
# rehydrations, the chaos slice absorbs faults and replays dead rounds,
# and contended query p99 stays below half an uncontended heavy round.
#
#   scripts/bench_serve.sh           # quick run (~5 s): 128 tenants
#   scripts/bench_serve.sh --full    # full run (~30 s): 512 tenants
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin serve_load -- $MODE --out BENCH_serve.json

echo "bench_serve: OK (BENCH_serve.json written)"
