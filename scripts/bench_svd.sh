#!/usr/bin/env bash
# Dense-SVD scaling benchmark: level-3 rotation accumulation vs the
# rotation-at-a-time direct reference.
#
# Runs the SVD scaling sweep (including the 8192x256 acceptance shape) and
# writes the results to BENCH_svd.json at the repo root. Quick mode trims
# the satellite shapes but keeps the acceptance shape:
#
#   scripts/bench_svd.sh            # quick sweep (CI smoke mode)
#   scripts/bench_svd.sh --full     # full sweep incl. 16384x128
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin svd_scaling -- $MODE --out BENCH_svd.json
echo "bench_svd: OK (BENCH_svd.json written)"
