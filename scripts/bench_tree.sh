#!/usr/bin/env bash
# Merge-tree weak-scaling benchmark (simulated alpha-beta clocks).
#
# Sweeps simulated world sizes — 16 to 256 in quick mode, up to 4096 in
# full mode — running the flat rank-0 gather APMOS against merge trees of
# fanout 4, fanout 16 and depth 2 over the Theta/Aries network model, and
# writes per-series simulated time, message counts, rank-0 ingress, sigma
# deviation and the tracked truncation bound to BENCH_tree.json at the
# repo root. Gated inside the harness: flat-resolved (depth-1) plans are
# bitwise identical to the parallel driver at every validated world, every
# tree run's sigma deviation stays within its tracked per-level truncation
# bound, and at the largest world at least one tree configuration beats
# the flat gather by >= 2x simulated time.
#
#   scripts/bench_tree.sh           # quick run (~1 s): worlds 16..256
#   scripts/bench_tree.sh --full    # full run (~10 s): worlds 16..4096
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=--quick
if [[ "${1:-}" == "--full" ]]; then
    MODE=""
fi

# shellcheck disable=SC2086  # $MODE is deliberately word-split (may be empty)
cargo run -p psvd-bench --release --bin tree_scaling -- $MODE --out BENCH_tree.json

echo "bench_tree: OK (BENCH_tree.json written)"
