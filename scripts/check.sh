#!/usr/bin/env bash
# One-command verification gate: formatting, lints, build, tests.
#
#   scripts/check.sh            # fmt --check + clippy -D warnings + tier-1 tests
#   scripts/check.sh --fix      # apply cargo fmt instead of checking, then gate
#   scripts/check.sh --cov      # additionally run cargo llvm-cov with the
#                               # line-coverage floor (needs cargo-llvm-cov)
#
# Tier-1 is the release build plus the full workspace test suite — the same
# bar the CI driver holds every PR to.
set -euo pipefail
cd "$(dirname "$0")/.."

WITH_COV=0
if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
else
    cargo fmt --check
fi
if [[ "${1:-}" == "--cov" ]]; then
    WITH_COV=1
fi
echo "check: fmt OK"

cargo clippy --workspace --all-targets -- -D warnings
echo "check: clippy OK"

cargo build --release
cargo test -q
echo "check: OK (fmt, clippy, release build, tests)"

if [[ "$WITH_COV" == "1" ]]; then
    if ! command -v cargo-llvm-cov >/dev/null 2>&1; then
        echo "check: cargo-llvm-cov not installed; skipping coverage" >&2
        echo "check: (install with: cargo install cargo-llvm-cov)" >&2
        exit 0
    fi
    # COV_FLOOR_LINES is the ratcheted line-coverage floor, kept two points
    # below the last measured workspace coverage so only a >=2pt regression
    # fails the gate. Bump it here (and only here) when coverage climbs.
    COV_FLOOR_LINES="${COV_FLOOR_LINES:-75}"
    cargo llvm-cov --workspace --fail-under-lines "$COV_FLOOR_LINES" \
        --html --output-dir target/llvm-cov
    echo "check: coverage OK (floor ${COV_FLOOR_LINES}% lines; HTML at target/llvm-cov/html)"
fi
