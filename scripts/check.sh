#!/usr/bin/env bash
# One-command verification gate: formatting, lints, build, tests.
#
#   scripts/check.sh            # fmt --check + clippy -D warnings + tier-1 tests
#   scripts/check.sh --fix      # apply cargo fmt instead of checking, then gate
#
# Tier-1 is the release build plus the full workspace test suite — the same
# bar the CI driver holds every PR to.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt
else
    cargo fmt --check
fi
echo "check: fmt OK"

cargo clippy --workspace --all-targets -- -D warnings
echo "check: clippy OK"

cargo build --release
cargo test -q
echo "check: OK (fmt, clippy, release build, tests)"
