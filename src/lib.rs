//! # pyparsvd
//!
//! Facade crate for the Rust reproduction of **PyParSVD: a streaming,
//! distributed and randomized singular-value-decomposition library**
//! (Maulik & Mengaldo, SC 2021).
//!
//! Re-exports the full workspace under one roof:
//!
//! - [`linalg`] — dense kernels (QR, SVD, eigensolver, randomized SVD);
//! - [`comm`] — MPI-like in-process communicator with traffic recording
//!   and a simulated network clock;
//! - [`data`] — workload generators (Burgers, synthetic ERA5) and the
//!   `ncsim` parallel-IO container;
//! - [`core`] — the streaming / distributed / randomized SVD drivers;
//! - [`serve`] — the multi-tenant SVD-as-a-service daemon (session
//!   manager, ingestion queues, checkpoint-backed eviction, chaos layer).
//!
//! ## Quickstart
//!
//! ```
//! use pyparsvd::prelude::*;
//!
//! // Stream a tall snapshot matrix in batches of 16 columns.
//! let data = Matrix::from_fn(500, 64, |i, j| ((i * 3 + j * 7) as f64 * 0.01).sin());
//! let mut svd = SerialStreamingSvd::new(SvdConfig::new(8));
//! svd.fit_batched(&data, 16);
//! assert_eq!(svd.modes().shape(), (500, 8));
//! ```
//!
//! ## Distributed
//!
//! ```
//! use pyparsvd::prelude::*;
//!
//! let data = Matrix::from_fn(120, 20, |i, j| ((i + j * j) as f64 * 0.03).cos());
//! let blocks = pyparsvd::data::partition::split_rows(&data, 4);
//! let world = World::new(4);
//! let results = world.run(|comm| {
//!     let mut driver = ParallelStreamingSvd::new(comm, SvdConfig::new(4));
//!     driver.fit_batched(&blocks[comm.rank()], 5);
//!     driver.singular_values().to_vec()
//! });
//! assert_eq!(results[0].len(), 4);
//! assert_eq!(results[0], results[3]); // every rank agrees
//! ```

pub use psvd_comm as comm;
pub use psvd_core as core;
pub use psvd_data as data;
pub use psvd_linalg as linalg;
pub use psvd_serve as serve;

/// The common imports for applications.
pub mod prelude {
    pub use psvd_comm::{
        CommError, Communicator, FaultComm, FaultPlan, NetworkModel, RetryPolicy, SelfComm, World,
    };
    pub use psvd_core::{
        batch_truncated_svd, hierarchical_parallel_svd, merge_tree_svd, parallel_svd_once,
        try_hierarchical_parallel_svd, try_merge_tree_svd, DegradedInfo, MergeTreePlan,
        ParallelStreamingSvd, PlanError, Precision, SerialStreamingSvd, SvdConfig, TreeMergeInfo,
        TreeSvdError,
    };
    pub use psvd_data::{BurgersConfig, Era5Config};
    pub use psvd_linalg::{svd, Matrix, RandomizedConfig, Svd, SvdMethod};
    pub use psvd_serve::{ChaosSpec, ServeConfig, SessionSpec, SvdServer};
}
