//! Checkpoint/restart integration: a distributed streaming job is stopped
//! mid-stream, each rank's state saved to disk, a *new* world restores, and
//! the result is bit-identical to an uninterrupted run — the scheduler-
//! allocation-boundary scenario HPC streaming jobs face.

use pyparsvd::core::pod::distributed_pod;
use pyparsvd::core::SvdCheckpoint;
use pyparsvd::data::burgers::{snapshot_matrix, BurgersConfig};
use pyparsvd::data::partition::split_rows;
use pyparsvd::prelude::*;

fn dataset() -> Matrix {
    snapshot_matrix(&BurgersConfig { grid_points: 320, snapshots: 48, ..BurgersConfig::default() })
}

#[test]
fn distributed_restart_is_bit_exact() {
    let data = dataset();
    let n_ranks = 4;
    let batch = 8;
    let cfg = SvdConfig::new(4).with_forget_factor(0.95).with_r1(24).with_r2(24);
    let blocks = split_rows(&data, n_ranks);

    // Uninterrupted reference: all 6 batches in one world.
    let world = World::new(n_ranks);
    let straight = world.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.fit_batched(&blocks[comm.rank()], batch);
        (d.gather_modes(0), d.singular_values().to_vec())
    });

    // Job 1: three batches, then checkpoint each rank to disk.
    let ckpt_path = |rank: usize| {
        std::env::temp_dir().join(format!("psvd_restart_{}_{rank}.ckp", std::process::id()))
    };
    let world1 = World::new(n_ranks);
    world1.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        let local = &blocks[comm.rank()];
        d.fit_batched(&local.submatrix(0, local.rows(), 0, 3 * batch), batch);
        d.checkpoint().save(&ckpt_path(comm.rank())).expect("save checkpoint");
    });

    // Job 2: a fresh world restores and finishes the stream.
    let world2 = World::new(n_ranks);
    let resumed = world2.run(|comm| {
        let ckpt = SvdCheckpoint::load(&ckpt_path(comm.rank())).expect("load checkpoint");
        let mut d = ParallelStreamingSvd::restore(comm, cfg, ckpt);
        assert_eq!(d.snapshots_seen(), 3 * batch);
        let local = &blocks[comm.rank()];
        for b in 3..6 {
            d.incorporate_data(&local.submatrix(0, local.rows(), b * batch, (b + 1) * batch));
        }
        (d.gather_modes(0), d.singular_values().to_vec())
    });
    for rank in 0..n_ranks {
        std::fs::remove_file(ckpt_path(rank)).ok();
    }

    assert_eq!(straight[0].1, resumed[0].1, "singular values must be bit-identical");
    assert_eq!(straight[0].0, resumed[0].0, "modes must be bit-identical");
}

#[test]
fn distributed_pod_matches_serial_pod() {
    let data = dataset();
    let n_ranks = 4;
    // Pinned to F64: this asserts the double-precision serial/distributed
    // equivalence contract regardless of PSVD_PRECISION.
    let cfg = SvdConfig::new(3)
        .with_forget_factor(1.0)
        .with_r1(48)
        .with_r2(48)
        .with_precision(Precision::F64);
    let blocks = split_rows(&data, n_ranks);

    let serial = pyparsvd::core::pod::pod(&data, 3);

    let world = World::new(n_ranks);
    let out = world.run(|comm| {
        let p = distributed_pod(comm, &blocks[comm.rank()], cfg);
        (p.mean.clone(), p.modes.clone(), p.singular_values.clone())
    });

    // Means concatenate to the global mean.
    let mut global_mean = Vec::new();
    for (mean, _, _) in &out {
        global_mean.extend_from_slice(mean);
    }
    for (a, b) in global_mean.iter().zip(&serial.mean) {
        assert!((a - b).abs() < 1e-12);
    }
    // Modes concatenate to the serial POD modes (up to sign).
    let modes = Matrix::vstack_all(&out.iter().map(|(_, m, _)| m.clone()).collect::<Vec<_>>());
    let angle = pyparsvd::linalg::validate::max_principal_angle(&serial.modes, &modes);
    assert!(angle < 1e-6, "distributed POD subspace angle {angle}");
    // Singular values match.
    for (a, b) in out[0].2.iter().zip(&serial.singular_values) {
        assert!((a - b).abs() < 1e-8 * b.max(1.0), "{a} vs {b}");
    }
}

#[test]
fn serve_eviction_rehydration_is_bit_exact() {
    // The service-level restart scenario: one session is evicted to its
    // checkpoint blob and rehydrated repeatedly mid-stream, its twin never
    // leaves memory; both see the same columns and must agree bitwise.
    use pyparsvd::serve::{ServeConfig, SessionSpec, SvdServer};

    let data = dataset();
    let spec = SessionSpec::new(4, data.rows())
        .with_svd(SvdConfig::new(4).with_forget_factor(0.95).with_r1(24).with_r2(24))
        .with_ranks(4)
        .with_batch(8);
    let server = SvdServer::new(ServeConfig::default().with_workers(2));
    server.open("churned", spec).unwrap();
    server.open("resident", spec).unwrap();

    for start in (0..data.cols()).step_by(8) {
        let chunk = data.submatrix(0, data.rows(), start, (start + 8).min(data.cols()));
        server.submit("churned", chunk.clone()).unwrap();
        server.submit("resident", chunk).unwrap();
        server.drain();
        // Spill only the churned session; queries force rehydration.
        assert!(server.evict("churned").unwrap(), "idle session must evict");
        let churned_sigma = server.singular_values("churned").unwrap();
        assert_eq!(churned_sigma, server.singular_values("resident").unwrap());
    }

    let churned = server.model("churned").unwrap();
    let resident = server.model("resident").unwrap();
    assert_eq!(churned.singular_values, resident.singular_values);
    assert_eq!(churned.modes, resident.modes);
    assert_eq!(churned.snapshots_seen, resident.snapshots_seen);
    assert!(server.stats().snapshot().evictions >= 6, "every cycle must actually spill");
    assert_eq!(server.stats().snapshot().evictions, server.stats().snapshot().rehydrations);
    server.shutdown();
}
