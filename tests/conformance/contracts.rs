//! Differential contracts: the same stream through serial, APMOS/TSQR
//! parallel, and randomized variants, over `SelfComm`, `ThreadComm`, and
//! a fault-free `FaultComm`, must tell one consistent story.

use psvd_comm::{Communicator, FaultComm, FaultPlan, SelfComm, World};
use psvd_core::ParallelStreamingSvd;
use psvd_data::partition::split_rows;
use psvd_linalg::validate::{max_principal_angle, spectrum_error};
use psvd_linalg::Matrix;

use crate::harness::{
    assert_descending, assert_orthonormal, batch_oracle, data_matrix, exact_config, serial_oracle,
    ALL_SPECTRA,
};

const M: usize = 60;
const N: usize = 24;
const K: usize = 4;
const BATCH: usize = 8;

/// Run the distributed stream over `ranks` ranks of a `ThreadComm` world
/// and gather the global modes at rank 0.
fn parallel_run(a: &Matrix, ranks: usize) -> (Matrix, Vec<f64>) {
    let cfg = exact_config(K, BATCH.max(K));
    let blocks = split_rows(a, ranks);
    let world = World::new(ranks);
    let out = world.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.fit_batched(&blocks[comm.rank()], BATCH);
        let s = d.singular_values().to_vec();
        (d.into_gathered_modes(0), s)
    });
    let (modes, s) = out.into_iter().next().unwrap();
    (modes.expect("rank 0 gathers"), s)
}

#[test]
fn serial_and_parallel_agree_across_spectra() {
    for (i, kind) in ALL_SPECTRA.iter().enumerate() {
        let a = data_matrix(*kind, M, N, 100 + i as u64);
        let cfg = exact_config(K, BATCH.max(K));
        let (serial_modes, serial_s) = serial_oracle(cfg, &a, BATCH);
        assert_descending(&serial_s);
        assert_orthonormal(&serial_modes, 1e-8);
        for ranks in [2usize, 3] {
            let (par_modes, par_s) = parallel_run(&a, ranks);
            assert_descending(&par_s);
            assert_orthonormal(&par_modes, 1e-8);
            let serr = spectrum_error(&serial_s, &par_s);
            assert!(serr < 1e-8, "{kind:?}/{ranks} ranks: sigma diverged by {serr}");
            let aerr = max_principal_angle(&serial_modes, &par_modes);
            assert!(aerr < 1e-6, "{kind:?}/{ranks} ranks: subspace diverged by {aerr}");
        }
    }
}

#[test]
fn selfcomm_single_rank_is_the_serial_stream() {
    // A 1-rank "distributed" run over SelfComm is the same algorithm as
    // the serial driver up to the TSQR detour; the results must agree to
    // round-off on every spectrum shape.
    for (i, kind) in ALL_SPECTRA.iter().enumerate() {
        let a = data_matrix(*kind, 40, 16, 200 + i as u64);
        let cfg = exact_config(3, 8);
        let (serial_modes, serial_s) = serial_oracle(cfg, &a, 8);
        let comm = SelfComm::new();
        let mut d = ParallelStreamingSvd::new(&comm, cfg);
        d.fit_batched(&a, 8);
        let s = d.singular_values().to_vec();
        let modes = d.into_gathered_modes(0).unwrap();
        assert!(spectrum_error(&serial_s, &s) < 1e-9, "{kind:?}");
        assert!(max_principal_angle(&serial_modes, &modes) < 1e-7, "{kind:?}");
    }
}

#[test]
fn fault_free_faultcomm_is_transparent() {
    // Wrapping the world in a FaultComm with an empty plan must not change
    // a single bit of the factorization.
    let a = data_matrix(crate::harness::Spectrum::Geometric, M, N, 7);
    let cfg = exact_config(K, BATCH.max(K));
    let blocks = split_rows(&a, 3);

    let plain = {
        let world = World::new(3);
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], BATCH);
            let s = d.singular_values().to_vec();
            (d.into_gathered_modes(0), s)
        })
    };
    let wrapped = {
        let world = World::new(3);
        world.run(|comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(1234));
            let mut d = ParallelStreamingSvd::new(&fc, cfg);
            d.fit_batched(&blocks[fc.rank()], BATCH);
            let s = d.singular_values().to_vec();
            (d.into_gathered_modes(0), s)
        })
    };
    assert_eq!(plain[0].1, wrapped[0].1, "singular values must be bit-identical");
    assert_eq!(plain[0].0, wrapped[0].0, "modes must be bit-identical");
}

#[test]
fn randomized_variant_tracks_the_leading_modes() {
    let a = data_matrix(crate::harness::Spectrum::Geometric, 80, 20, 9);
    let k = 3;
    let (_, s_ref) = batch_oracle(&a, k);
    let cfg = psvd_core::SvdConfig::new(k)
        .with_forget_factor(1.0)
        .with_r1(20)
        .with_r2(10)
        .with_low_rank(true)
        .with_power_iterations(2)
        .with_seed(77);
    let blocks = split_rows(&a, 2);
    let world = World::new(2);
    let out = world.run(|comm| {
        let fc = FaultComm::new(comm, FaultPlan::new(5));
        let mut d = ParallelStreamingSvd::new(&fc, cfg);
        let (_, s) = d.parallel_svd(&blocks[fc.rank()]);
        s
    });
    assert_descending(&out[0]);
    for (got, want) in out[0].iter().zip(&s_ref) {
        assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
    }
    // Every rank agrees on the spectrum.
    assert!(out.windows(2).all(|w| w[0] == w[1]));
}
