//! Rank-death schedules: the run continues degraded on the survivors,
//! the continuation is exactly a restart of the surviving world from its
//! checkpoints, and the surviving rows track the serial oracle.

use psvd_comm::{CommError, Communicator, FaultComm, FaultPlan, World};
use psvd_core::{ParallelStreamingSvd, SerialStreamingSvd, SvdCheckpoint, SvdConfig};
use psvd_data::partition::split_rows;
use psvd_linalg::validate::{max_principal_angle, spectrum_error};
use psvd_linalg::Matrix;

use crate::harness::{data_matrix, exact_config, Spectrum};

const M: usize = 64;
const N: usize = 32;
const RANKS: usize = 4;
const VICTIM: usize = 1;
const BATCH: usize = 8;

fn cfg() -> SvdConfig {
    exact_config(4, BATCH).with_forget_factor(0.95).with_allow_degraded(true)
}

/// What each rank reports from the faulted run.
struct RankOutcome {
    /// `Err` only on the victim.
    fate: Result<(), CommError>,
    /// Checkpoint taken after the first update, before the death round.
    ckpt: Option<SvdCheckpoint>,
    /// Final local modes and singular values (survivors only).
    modes: Matrix,
    sigma: Vec<f64>,
    degraded: Option<psvd_core::DegradedInfo>,
}

/// Stream 4 batches over 4 ranks; the victim dies at the start of the
/// second update (collective round 5: init and update one take two rounds
/// each). Survivors checkpoint after update one and finish the stream.
fn death_run(a: &Matrix) -> Vec<RankOutcome> {
    let blocks = split_rows(a, RANKS);
    let plan = FaultPlan::new(77).with_death(VICTIM, 5);
    let world = World::new(RANKS);
    world.run(|comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let b = &blocks[comm.rank()];
        let rows = b.rows();
        let mut d = ParallelStreamingSvd::new(&fc, cfg());
        d.try_initialize(&b.submatrix(0, rows, 0, 8)).expect("init precedes the death");
        d.try_incorporate_data(&b.submatrix(0, rows, 8, 16)).expect("update one too");
        let ckpt = Some(d.checkpoint());
        let mut fate = Ok(());
        for c0 in [16usize, 24] {
            if let Err(e) = d.try_incorporate_data(&b.submatrix(0, rows, c0, c0 + BATCH)) {
                fate = Err(e);
                break;
            }
        }
        let degraded = d.degraded().cloned();
        let (modes, sigma) = d.into_modes();
        RankOutcome { fate, ckpt, modes, sigma, degraded }
    })
}

#[test]
fn rank_death_degrades_and_reports() {
    let a = data_matrix(Spectrum::Geometric, M, N, 50);
    let out = death_run(&a);

    // The victim sees its own death as a permanent error.
    assert_eq!(out[VICTIM].fate, Err(CommError::RankDead { rank: VICTIM }));

    // Survivors complete and report the shrink.
    for (r, o) in out.iter().enumerate() {
        if r == VICTIM {
            continue;
        }
        assert_eq!(o.fate, Ok(()), "rank {r} should have survived");
        let info = o.degraded.as_ref().expect("survivors report degradation");
        assert_eq!(info.initial_ranks, RANKS);
        assert_eq!(info.surviving_ranks, RANKS - 1);
        assert_eq!(info.failed_ranks, vec![VICTIM]);
        assert_eq!(info.detected_at_iteration, 2);
        crate::harness::assert_descending(&o.sigma);
        // Every survivor agrees on the spectrum.
        assert_eq!(o.sigma, out[(VICTIM + 1) % RANKS].sigma);
    }
}

#[test]
fn degraded_continuation_is_a_bitwise_restart_of_the_survivors() {
    // Acceptance criterion (checkpoint-restart equivalence after injected
    // rank death): the degraded continuation must be bit-identical to a
    // fresh 3-rank world restored from the survivors' checkpoints and fed
    // the remaining survivor batches.
    let a = data_matrix(Spectrum::Geometric, M, N, 50);
    let out = death_run(&a);

    let blocks = split_rows(&a, RANKS);
    let survivors: Vec<usize> = (0..RANKS).filter(|&r| r != VICTIM).collect();
    let ckpts: Vec<SvdCheckpoint> =
        survivors.iter().map(|&r| out[r].ckpt.clone().unwrap()).collect();
    let world = World::new(RANKS - 1);
    let replay = world.run(|comm| {
        let phys = survivors[comm.rank()];
        let b = &blocks[phys];
        let mut d = ParallelStreamingSvd::restore(comm, cfg(), ckpts[comm.rank()].clone());
        for c0 in [16usize, 24] {
            d.incorporate_data(&b.submatrix(0, b.rows(), c0, c0 + BATCH));
        }
        d.into_modes()
    });
    for (i, &phys) in survivors.iter().enumerate() {
        assert_eq!(replay[i].1, out[phys].sigma, "rank {phys}: sigma must be bit-identical");
        assert_eq!(replay[i].0, out[phys].modes, "rank {phys}: modes must be bit-identical");
    }
}

#[test]
fn degraded_run_matches_the_serial_oracle_on_surviving_rows() {
    // Acceptance criterion: serial-equivalence on the surviving rows
    // within 1e-10. The oracle restarts the serial driver from the
    // vstacked survivor checkpoints and streams the survivor rows.
    let a = data_matrix(Spectrum::Geometric, M, N, 50);
    let out = death_run(&a);

    let blocks = split_rows(&a, RANKS);
    let survivors: Vec<usize> = (0..RANKS).filter(|&r| r != VICTIM).collect();
    let global =
        SvdCheckpoint::vstack(survivors.iter().map(|&r| out[r].ckpt.clone().unwrap()).collect());
    let survivor_rows =
        Matrix::vstack_all(&survivors.iter().map(|&r| blocks[r].clone()).collect::<Vec<_>>());
    let mut serial = SerialStreamingSvd::restore(cfg(), global);
    for c0 in [16usize, 24] {
        serial.incorporate_data(&survivor_rows.submatrix(0, survivor_rows.rows(), c0, c0 + BATCH));
    }

    let par_modes =
        Matrix::vstack_all(&survivors.iter().map(|&r| out[r].modes.clone()).collect::<Vec<_>>());
    let serr = spectrum_error(serial.singular_values(), &out[survivors[0]].sigma);
    assert!(serr < 1e-10, "serial vs degraded sigma diverged by {serr}");
    // The subspace angle amplifies round-off by the inverse spectral gap;
    // 1e-6 is this repo's standard serial-vs-parallel mode tolerance.
    let aerr = max_principal_angle(serial.modes(), &par_modes);
    assert!(aerr < 1e-6, "serial vs degraded subspace diverged by {aerr}");
}

#[test]
fn death_replay_is_deterministic_across_kernel_thread_counts() {
    // Acceptance criterion: the rank-death replay is deterministic for a
    // fixed seed at any kernel thread count.
    let a = data_matrix(Spectrum::Clustered, M, N, 51);
    let before = psvd_linalg::par::num_threads();
    psvd_linalg::par::set_num_threads(1);
    let one = death_run(&a);
    psvd_linalg::par::set_num_threads(4);
    let four = death_run(&a);
    psvd_linalg::par::set_num_threads(before);
    for (x, y) in one.iter().zip(&four) {
        assert_eq!(x.fate, y.fate);
        assert_eq!(x.sigma, y.sigma);
        assert_eq!(x.modes, y.modes);
        assert_eq!(x.degraded, y.degraded);
        assert_eq!(x.ckpt, y.ckpt);
    }
}

#[test]
fn death_without_allow_degraded_is_a_hard_error_everywhere() {
    let a = data_matrix(Spectrum::Geometric, M, N, 52);
    let blocks = split_rows(&a, RANKS);
    let plan = FaultPlan::new(78).with_death(VICTIM, 5);
    let strict = cfg().with_allow_degraded(false);
    let world = World::new(RANKS);
    let out = world.run(|comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let b = &blocks[comm.rank()];
        let rows = b.rows();
        let mut d = ParallelStreamingSvd::new(&fc, strict);
        d.try_initialize(&b.submatrix(0, rows, 0, 8))?;
        for c0 in [8usize, 16, 24] {
            d.try_incorporate_data(&b.submatrix(0, rows, c0, c0 + BATCH))?;
        }
        Ok::<(), CommError>(())
    });
    for (r, fate) in out.iter().enumerate() {
        assert_eq!(
            *fate,
            Err(CommError::RankDead { rank: VICTIM }),
            "rank {r} must refuse to continue degraded"
        );
    }
}
