//! Transient-fault schedules: every recovery must be invisible — the
//! factorization bitwise-identical to the fault-free run — and every
//! replay deterministic for a fixed seed.

use psvd_comm::{Communicator, FaultComm, FaultPlan, FaultStats, World};
use psvd_core::{ParallelStreamingSvd, SvdConfig};
use psvd_data::partition::split_rows;
use psvd_linalg::Matrix;

use crate::harness::{data_matrix, exact_config, Spectrum};

const M: usize = 60;
const N: usize = 24;
const RANKS: usize = 3;
const BATCH: usize = 8;

fn cfg(tree: bool) -> SvdConfig {
    exact_config(4, BATCH).with_forget_factor(0.95).with_tree_collectives(tree)
}

/// Stream the whole matrix under a fault plan; returns per-rank
/// `(gathered modes at 0, singular values, fault stats)`.
fn faulted_run(
    a: &Matrix,
    tree: bool,
    plan: &FaultPlan,
) -> Vec<(Option<Matrix>, Vec<f64>, FaultStats)> {
    let blocks = split_rows(a, RANKS);
    let world = World::new(RANKS);
    world.run(|comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let mut d = ParallelStreamingSvd::new(&fc, cfg(tree));
        d.fit_batched(&blocks[fc.rank()], BATCH);
        let s = d.singular_values().to_vec();
        let modes = d.into_gathered_modes(0);
        let stats = fc.stats();
        (modes, s, stats)
    })
}

#[test]
fn one_transient_drop_per_collective_is_bitwise_invisible() {
    // Acceptance criterion: with every send's first attempt dropped (so at
    // least one transient drop per collective), the retry path must
    // reproduce the fault-free factorization bit for bit — on both the
    // flat and the tree collectives.
    let a = data_matrix(Spectrum::Geometric, M, N, 31);
    for tree in [false, true] {
        let clean = faulted_run(&a, tree, &FaultPlan::new(8));
        let faulted = faulted_run(&a, tree, &FaultPlan::new(8).with_drop_prob(1.0));
        assert_eq!(clean[0].1, faulted[0].1, "singular values (tree={tree})");
        assert_eq!(clean[0].0, faulted[0].0, "modes (tree={tree})");
        let drops: u64 = faulted.iter().map(|(_, _, s)| s.drops).sum();
        let retries: u64 = faulted.iter().map(|(_, _, s)| s.retries).sum();
        assert!(drops > 0, "the schedule must actually have dropped sends (tree={tree})");
        assert_eq!(drops, retries, "every drop costs exactly one retry (tree={tree})");
        assert!(clean.iter().all(|(_, _, s)| *s == FaultStats::default()));
    }
}

#[test]
fn corruption_and_truncation_recover_bitwise() {
    // Receive-side payload mangling: the modeled retransmission delivers
    // the sender's intact copy, so results are bitwise clean.
    let a = data_matrix(Spectrum::Clustered, M, N, 32);
    for tree in [false, true] {
        let clean = faulted_run(&a, tree, &FaultPlan::new(12));
        let faulted = faulted_run(&a, tree, &FaultPlan::new(12).with_corrupt_prob(1.0));
        assert_eq!(clean[0].1, faulted[0].1, "singular values (tree={tree})");
        assert_eq!(clean[0].0, faulted[0].0, "modes (tree={tree})");
        let mangled: u64 = faulted.iter().map(|(_, _, s)| s.truncations + s.corruptions).sum();
        assert!(mangled > 0, "the schedule must actually have mangled payloads");
    }
}

#[test]
fn delayed_reordered_messages_recover_bitwise() {
    // Send-side delays exercise the receivers' out-of-order tag buffering;
    // values are unchanged, so the factorization is too.
    let a = data_matrix(Spectrum::Step, M, N, 33);
    let clean = faulted_run(&a, false, &FaultPlan::new(21));
    let faulted = faulted_run(&a, false, &FaultPlan::new(21).with_delay_prob(0.5, 2));
    assert_eq!(clean[0].1, faulted[0].1, "singular values");
    assert_eq!(clean[0].0, faulted[0].0, "modes");
    let delays: u64 = faulted.iter().map(|(_, _, s)| s.delays).sum();
    assert!(delays > 0, "the schedule must actually have delayed sends");
}

#[test]
fn mixed_schedule_replays_identically_across_kernel_thread_counts() {
    // Acceptance criterion: fault decisions are a pure function of the
    // seed and per-rank op counters, so the replay — results AND injected
    // fault counts — is identical whether the GEMM pool runs 1 thread or 4.
    let a = data_matrix(Spectrum::Geometric, M, N, 34);
    let plan =
        FaultPlan::new(555).with_drop_prob(0.5).with_corrupt_prob(0.4).with_delay_prob(0.3, 2);
    let before = psvd_linalg::par::num_threads();
    psvd_linalg::par::set_num_threads(1);
    let one = faulted_run(&a, false, &plan);
    psvd_linalg::par::set_num_threads(4);
    let four = faulted_run(&a, false, &plan);
    psvd_linalg::par::set_num_threads(before);
    assert_eq!(one, four, "replay must not depend on the kernel thread count");
    // And replaying at the same thread count is trivially deterministic.
    psvd_linalg::par::set_num_threads(before);
    let again = faulted_run(&a, false, &plan);
    assert_eq!(one, again);
}

#[test]
fn retries_do_not_leak_payload_allocations() {
    // Satellite: a retried collective must not allocate beyond the
    // fault-free run. Recovery re-sends the retained payload (drops) or
    // re-delivers the stashed intact copy (corruptions), so the traffic
    // ledger's alloc_bytes — and the drivers' workspace hit rate — are
    // unchanged by any transient schedule.
    let a = data_matrix(Spectrum::Geometric, M, N, 35);
    let blocks = split_rows(&a, RANKS);
    let run = |plan: FaultPlan| {
        let world = World::new(RANKS);
        let scratch = world.run(|comm| {
            let fc = FaultComm::new(comm, plan.clone());
            let mut d = ParallelStreamingSvd::new(&fc, cfg(false));
            let b = &blocks[fc.rank()];
            d.fit_batched(&b.submatrix(0, b.rows(), 0, 16), BATCH); // warm-up
            d.reset_scratch_stats();
            d.fit_batched(&b.submatrix(0, b.rows(), 16, N), BATCH);
            d.scratch_stats()
        });
        (world.stats().total_alloc_bytes(), world.stats().total_alloc_count(), scratch)
    };
    let (clean_bytes, clean_count, _) = run(FaultPlan::new(40));
    let (fault_bytes, fault_count, scratch) =
        run(FaultPlan::new(40).with_drop_prob(1.0).with_corrupt_prob(1.0));
    assert_eq!(clean_bytes, fault_bytes, "retries must not charge payload allocations");
    assert_eq!(clean_count, fault_count);
    for s in &scratch {
        assert_eq!(s.misses, 0, "faulted steady-state rounds must stay on the warm workspace");
        assert_eq!(s.fresh_bytes, 0);
    }
}
