//! Shared machinery for the conformance suite: synthetic spectra, the
//! serial oracle, and the paper-contract assertions.

use psvd_core::{batch_truncated_svd, SerialStreamingSvd, SvdConfig};
use psvd_linalg::norms::orthogonality_error;
use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
use psvd_linalg::Matrix;

/// Spectrum shapes the differential tests sweep: each stresses a different
/// regime of the truncation/streaming error analysis.
#[derive(Clone, Copy, Debug)]
pub enum Spectrum {
    /// Geometric decay — the paper's well-separated POD case.
    Geometric,
    /// Two tight clusters — near-degenerate values, sign/order stress.
    Clustered,
    /// Flat head then geometric tail — truncation right at a plateau.
    Step,
    /// Slow linear decay — worst case for low-rank truncation.
    Linear,
}

pub const ALL_SPECTRA: [Spectrum; 4] =
    [Spectrum::Geometric, Spectrum::Clustered, Spectrum::Step, Spectrum::Linear];

/// The singular values for `n` columns of the given shape.
pub fn spectrum_values(kind: Spectrum, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match kind {
            Spectrum::Geometric => 10.0 * 0.65f64.powi(i as i32),
            Spectrum::Clustered => {
                if i < n / 2 {
                    8.0 - 1e-3 * i as f64
                } else {
                    2.0 - 1e-3 * i as f64
                }
            }
            Spectrum::Step => {
                if i < 4 {
                    6.0
                } else {
                    6.0 * 0.5f64.powi(i as i32 - 3)
                }
            }
            Spectrum::Linear => 5.0 - 4.0 * i as f64 / n as f64,
        })
        .collect()
}

/// A seeded `m x n` snapshot matrix with the given spectrum shape.
pub fn data_matrix(kind: Spectrum, m: usize, n: usize, seed: u64) -> Matrix {
    let spec = spectrum_values(kind, n.min(m));
    matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
}

/// Paper contract: singular values come out in non-increasing order and
/// strictly positive.
pub fn assert_descending(s: &[f64]) {
    assert!(!s.is_empty(), "no singular values returned");
    for w in s.windows(2) {
        assert!(w[0] >= w[1], "singular values not descending: {:?}", s);
    }
    assert!(*s.last().unwrap() > 0.0, "non-positive singular value: {:?}", s);
}

/// Paper contract: the mode matrix has orthonormal columns.
pub fn assert_orthonormal(q: &Matrix, tol: f64) {
    let err = orthogonality_error(q);
    assert!(err < tol, "orthogonality error {err} exceeds {tol}");
}

/// The serial streaming oracle: final `(modes, singular values)` of the
/// Levy–Lindenbaum loop over the full matrix.
pub fn serial_oracle(cfg: SvdConfig, a: &Matrix, batch: usize) -> (Matrix, Vec<f64>) {
    let mut s = SerialStreamingSvd::new(cfg);
    s.fit_batched(a, batch);
    let sv = s.singular_values().to_vec();
    (s.modes().clone(), sv)
}

/// The batch (non-streaming) oracle.
pub fn batch_oracle(a: &Matrix, k: usize) -> (Matrix, Vec<f64>) {
    batch_truncated_svd(a, k)
}

/// A full-rank (no information discarded) streaming configuration, so the
/// serial and distributed paths agree to round-off rather than to
/// truncation error. Pinned to F64: these contracts assert the
/// double-precision round-off story regardless of `PSVD_PRECISION`
/// (mixed mode has its own conformance suite in `precision.rs`).
pub fn exact_config(k: usize, n: usize) -> SvdConfig {
    SvdConfig::new(k)
        .with_forget_factor(1.0)
        .with_r1(n)
        .with_r2(n)
        .with_precision(psvd_core::Precision::F64)
}
