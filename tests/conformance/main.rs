//! Differential-oracle conformance suite.
//!
//! Every test here checks the paper's contracts — descending singular
//! values, orthonormal factors, serial ≡ parallel, checkpoint-restart
//! equivalence — by running the same stream through independent
//! implementations (serial vs APMOS/TSQR vs randomized) over different
//! communicators (`SelfComm`, `ThreadComm`, `FaultComm` replaying seeded
//! fault schedules) and diffing the results. See DESIGN.md, "Fault model
//! & conformance testing".

mod contracts;
mod degraded;
mod fault_injection;
mod harness;
mod precision;
mod tree;
