//! Precision conformance: the f32 instantiation against the f64 oracle,
//! and the mixed-precision pipeline's accuracy / traffic contracts.
//!
//! Tolerances are stated relative to the dtype's epsilon: an f32 result
//! is held to `c · eps_f32 · σ_max` where the f64 path is held to the
//! analogous f64 bound — see DESIGN.md, "Scalar genericity & mixed
//! precision" for the error budget.

use psvd_comm::{Communicator, World};
use psvd_core::{ParallelStreamingSvd, Precision, SerialStreamingSvd, SvdConfig};
use psvd_data::partition::split_rows;
use psvd_linalg::randomized::{mixed_randomized_svd, randomized_svd};
use psvd_linalg::svd::svd;
use psvd_linalg::{Matrix, RandomizedConfig};

use crate::harness::{data_matrix, spectrum_values, ALL_SPECTRA};

const M: usize = 60;
const N: usize = 20;

/// f32 dense SVD agrees with the f64 spectrum on every synthetic shape:
/// singular values are perfectly conditioned (|σ(A+E) − σ(A)| ≤ ‖E‖₂),
/// so demoting the data perturbs each σ by at most the demotion error
/// ‖E‖ ≲ √(mn)·eps_f32·‖A‖ — the bound asserted here.
#[test]
fn f32_spectrum_matches_f64_across_spectra() {
    for (i, kind) in ALL_SPECTRA.iter().enumerate() {
        let a = data_matrix(*kind, M, N, 500 + i as u64);
        let f64_svd = svd(&a);
        let f32_svd = svd(&a.cast::<f32>());
        let sigma_max = f64_svd.s[0];
        let bound = ((M * N) as f64).sqrt() * f32::EPSILON as f64 * sigma_max;
        for (j, (narrow, wide)) in f32_svd.s.iter().zip(&f64_svd.s).enumerate() {
            let diff = (*narrow as f64 - wide).abs();
            assert!(
                diff <= bound,
                "{kind:?}: sigma_{j} f32 {narrow} vs f64 {wide} (diff {diff:.3e} > {bound:.3e})"
            );
        }
    }
}

/// The f32 streaming driver tracks the f64 one across every spectrum:
/// same stream, same batching, singular values within an f32-scaled
/// round-off budget (streaming compounds the per-update rounding, hence
/// the larger constant than the one-shot bound above).
#[test]
fn f32_streaming_driver_tracks_f64_across_spectra() {
    for (i, kind) in ALL_SPECTRA.iter().enumerate() {
        let a = data_matrix(*kind, M, N, 700 + i as u64);
        let cfg = SvdConfig::new(4)
            .with_forget_factor(1.0)
            .with_r1(N)
            .with_r2(N)
            .with_precision(Precision::F64);
        let mut wide = SerialStreamingSvd::new(cfg);
        wide.fit_batched(&a, 5);
        let mut narrow = SerialStreamingSvd::<f32>::new(cfg);
        narrow.fit_batched(&a.cast::<f32>(), 5);
        let sigma_max = wide.singular_values()[0];
        let bound = 1e-4 * sigma_max;
        for (j, (ns, ws)) in narrow.singular_values().iter().zip(wide.singular_values()).enumerate()
        {
            let diff = (*ns as f64 - ws).abs();
            assert!(
                diff <= bound,
                "{kind:?}: sigma_{j} f32-stream {ns} vs f64-stream {ws} (diff {diff:.3e})"
            );
        }
    }
}

/// Mixed randomized SVD (f32 sketch, f64 re-orthogonalization and
/// factors) reproduces the all-f64 randomized pipeline's singular values
/// to 1e-5 relative. The two draw the *same* Gaussian sample stream (the
/// f32 sketch is the f64 sketch rounded), so the captured subspaces agree
/// to f32 level and the σs — quadratically insensitive to subspace
/// perturbation — much closer than that.
#[test]
fn mixed_randomized_svd_matches_f64_randomized_within_1e5() {
    for (i, kind) in ALL_SPECTRA.iter().enumerate() {
        let a = data_matrix(*kind, M, N, 900 + i as u64);
        let cfg = RandomizedConfig::new(6).with_oversampling(6).with_power_iterations(2);
        let wide = randomized_svd(&a, &cfg, &mut psvd_linalg::random::seeded_rng(3));
        let mixed = mixed_randomized_svd(&a, &cfg, &mut psvd_linalg::random::seeded_rng(3));
        assert_eq!(wide.s.len(), mixed.s.len());
        for (j, (ms, ws)) in mixed.s.iter().zip(&wide.s).enumerate() {
            let rel = (ms - ws).abs() / ws.max(f64::MIN_POSITIVE);
            assert!(
                rel <= 1e-5,
                "{kind:?}: sigma_{j} mixed {ms} vs f64 {ws} (rel {rel:.3e} > 1e-5)"
            );
        }
    }
}

/// One full mixed streaming run per driver: singular values within 1e-5
/// relative of the all-f64 streaming oracle on the same stream.
#[test]
fn mixed_streaming_sigma_within_1e5_of_f64_oracle() {
    let a = data_matrix(crate::harness::Spectrum::Geometric, 72, 24, 1234);
    let base = SvdConfig::new(5).with_forget_factor(1.0).with_r1(24).with_r2(24);

    let mut oracle = SerialStreamingSvd::new(base.with_precision(Precision::F64));
    oracle.fit_batched(&a, 6);

    // Serial mixed (non-randomized local math is f64; exercised for parity).
    let mut serial_mixed = SerialStreamingSvd::new(base.with_precision(Precision::Mixed));
    serial_mixed.fit_batched(&a, 6);
    for (ms, ws) in serial_mixed.singular_values().iter().zip(oracle.singular_values()) {
        let rel = (ms - ws).abs() / ws.max(f64::MIN_POSITIVE);
        assert!(rel <= 1e-5, "serial mixed sigma {ms} vs {ws} (rel {rel:.3e})");
    }

    // Parallel mixed: every wire payload is f32, σs still within 1e-5.
    let blocks = split_rows(&a, 3);
    let world = World::new(3);
    let out = world.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, base.with_precision(Precision::Mixed));
        d.fit_batched(&blocks[comm.rank()], 6);
        d.singular_values().to_vec()
    });
    for (rank, s) in out.iter().enumerate() {
        assert_eq!(s, &out[0], "rank {rank} disagrees on mixed singular values");
    }
    for (j, (ms, ws)) in out[0].iter().zip(oracle.singular_values()).enumerate() {
        let rel = (ms - ws).abs() / ws.max(f64::MIN_POSITIVE);
        assert!(rel <= 1e-5, "parallel mixed sigma_{j} {ms} vs {ws} (rel {rel:.3e})");
    }
}

/// Mixed mode's reason to exist: the same distributed stream moves about
/// half the bytes (matrix payloads demote to f32 on the wire; only the
/// 16-byte dims headers and the K-element σ vectors stay full-width).
#[test]
fn mixed_mode_halves_wire_traffic() {
    let a = data_matrix(crate::harness::Spectrum::Clustered, 80, 32, 77);
    let run_bytes = |precision: Precision| {
        let cfg = SvdConfig::new(4)
            .with_forget_factor(0.95)
            .with_r1(16)
            .with_r2(8)
            .with_precision(precision);
        let blocks = split_rows(&a, 4);
        let world = World::new(4);
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], 8);
            let _ = d.allgather_modes();
        });
        world.stats().total_bytes()
    };
    let wide = run_bytes(Precision::F64);
    let mixed = run_bytes(Precision::Mixed);
    let ratio = mixed as f64 / wide as f64;
    assert!(ratio < 0.60, "mixed wire bytes {mixed} vs f64 {wide}: ratio {ratio:.3} not ~0.5");
    assert!(ratio > 0.40, "ratio {ratio:.3} suspiciously low — accounting bug?");
}

/// The dtype-aware spectra themselves: sanity that the harness spectra
/// survive an f32 round trip (guards the synthetic-data generator against
/// silently exceeding f32 range/precision, which would invalidate the
/// comparisons above).
#[test]
fn harness_spectra_are_f32_representable() {
    for kind in ALL_SPECTRA {
        for v in spectrum_values(kind, N) {
            let rt = v as f32 as f64;
            assert!((rt - v).abs() <= f32::EPSILON as f64 * v.abs().max(1.0));
        }
    }
}

/// Mixed-mode determinism: tree and flat collectives demote identically,
/// so the factorization is bit-identical either way.
#[test]
fn mixed_tree_and_flat_collectives_bit_identical() {
    let a = data_matrix(crate::harness::Spectrum::Step, 64, 24, 42);
    let base = SvdConfig::new(4)
        .with_forget_factor(0.95)
        .with_r1(12)
        .with_r2(8)
        .with_precision(Precision::Mixed);
    let run = |cfg: SvdConfig| {
        let blocks = split_rows(&a, 4);
        let world = World::new(4);
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], 8);
            (d.gather_modes(0), d.singular_values().to_vec())
        })
    };
    let flat = run(base);
    let tree = run(base.with_tree_collectives(true));
    assert_eq!(flat[0].1, tree[0].1, "mixed σ must be bit-identical tree vs flat");
    assert_eq!(flat[0].0, tree[0].0, "mixed modes must be bit-identical tree vs flat");
}

/// An f32-dtype parallel stream over a `Matrix<f32>` partition: the
/// generic driver runs end-to-end at single precision and all ranks agree
/// bitwise on the results.
#[test]
fn f32_parallel_driver_runs_end_to_end() {
    let a = data_matrix(crate::harness::Spectrum::Geometric, 48, 16, 8);
    let a32: Matrix<f32> = a.cast();
    let cfg = SvdConfig::new(3)
        .with_forget_factor(1.0)
        .with_r1(16)
        .with_r2(16)
        .with_precision(Precision::F32);
    let blocks = split_rows(&a32, 2);
    let world = World::new(2);
    let out = world.run(|comm| {
        let mut d = ParallelStreamingSvd::<_, f32>::new(comm, cfg);
        d.fit_batched(&blocks[comm.rank()], 4);
        d.singular_values().to_vec()
    });
    assert_eq!(out[0], out[1], "ranks must agree bitwise at f32");
    // Oracle: the f64 *streaming* driver on the same stream (the batch
    // SVD is not the reference here — K-truncation between batches is
    // part of the contract, not an error term).
    let mut oracle = SerialStreamingSvd::new(cfg.with_precision(Precision::F64));
    oracle.fit_batched(&a, 4);
    let sigma_max = oracle.singular_values()[0];
    for (got, want) in out[0].iter().zip(oracle.singular_values()) {
        assert!(
            (*got as f64 - want).abs() < 1e-3 * sigma_max,
            "f32 parallel sigma {got} vs f64 streaming oracle {want}"
        );
    }
}
