//! Merge-tree fault contracts: transient faults inside the hierarchical
//! exchange recover bitwise, and a rank death at the entry of a tree
//! round degrades onto the survivors exactly as a fresh survivor-world
//! run — the tree analogue of `degraded.rs`.

use psvd_comm::{CommError, Communicator, FaultComm, FaultPlan, FaultStats, World};
use psvd_core::{ParallelStreamingSvd, SvdConfig, TreeMergeInfo};
use psvd_data::partition::split_rows;
use psvd_linalg::Matrix;

use crate::harness::{data_matrix, exact_config, Spectrum};

const M: usize = 72;
const N: usize = 24;
const BATCH: usize = 8;

/// Exact-config base with the merge tree pinned on (fanout 2) regardless
/// of the environment's `PSVD_TREE_*` seeding.
fn tree_cfg() -> SvdConfig {
    exact_config(4, BATCH).with_forget_factor(0.95).with_tree_fanout(2).with_tree_depth(0)
}

/// One rank's view of a faulted run: modes gathered at 0, σ, the tree
/// diagnostics and the fault counters.
type FaultedRank = (Option<Matrix>, Vec<f64>, Option<TreeMergeInfo>, FaultStats);

/// One rank's view of a run with an injected death: its fate, local
/// modes, σ and the tree diagnostics.
type DeathRank = (Result<(), CommError>, Matrix, Vec<f64>, Option<TreeMergeInfo>);

/// Stream the whole matrix through the tree-configured driver under a
/// fault plan; returns per-rank `(modes at 0, σ, tree info, fault stats)`.
fn faulted_tree_run(a: &Matrix, ranks: usize, plan: &FaultPlan) -> Vec<FaultedRank> {
    let blocks = split_rows(a, ranks);
    let world = World::new(ranks);
    world.run(|comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let mut d = ParallelStreamingSvd::new(&fc, tree_cfg());
        d.fit_batched(&blocks[fc.rank()], BATCH);
        let s = d.singular_values().to_vec();
        let info = d.tree_merge_info().cloned();
        let modes = d.into_gathered_modes(0);
        let stats = fc.stats();
        (modes, s, info, stats)
    })
}

#[test]
fn transient_faults_in_the_tree_exchange_are_bitwise_invisible() {
    // Every send's first attempt dropped, then every payload mangled: the
    // retry path must reproduce the fault-free tree factorization bit for
    // bit, and the executed tree shape must be untouched.
    let a = data_matrix(Spectrum::Geometric, M, N, 61);
    let clean = faulted_tree_run(&a, 6, &FaultPlan::new(21));
    assert_eq!(
        clean[0].2.as_ref().expect("tree engaged").fanouts,
        vec![2, 2, 2],
        "6 ranks at fanout 2 is a depth-3 tree"
    );
    for (label, plan) in [
        ("drop", FaultPlan::new(21).with_drop_prob(1.0)),
        ("corrupt", FaultPlan::new(21).with_corrupt_prob(1.0)),
    ] {
        let faulted = faulted_tree_run(&a, 6, &plan);
        assert_eq!(clean[0].1, faulted[0].1, "singular values ({label})");
        assert_eq!(clean[0].0, faulted[0].0, "modes ({label})");
        assert_eq!(clean[0].2, faulted[0].2, "tree diagnostics ({label})");
        let touched: u64 =
            faulted.iter().map(|(_, _, _, s)| s.drops + s.corruptions + s.truncations).sum();
        assert!(touched > 0, "the {label} schedule must actually have fired");
    }
}

/// Kill rank 1 of 4 at collective round 1 — the first tag claim of the
/// tree walk, i.e. the entry barrier of the hierarchical initialize,
/// before any factor moved. Survivors renumber and run the round on the
/// 3-rank world.
fn tree_death_run(a: &Matrix) -> Vec<DeathRank> {
    const RANKS: usize = 4;
    const VICTIM: usize = 1;
    let blocks = split_rows(a, RANKS);
    let plan = FaultPlan::new(91).with_death(VICTIM, 1);
    let world = World::new(RANKS);
    world.run(|comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let b = &blocks[comm.rank()];
        let rows = b.rows();
        let cfg = tree_cfg().with_allow_degraded(true);
        let mut d = ParallelStreamingSvd::new(&fc, cfg);
        let fate = (|| {
            d.try_initialize(&b.submatrix(0, rows, 0, BATCH))?;
            d.try_incorporate_data(&b.submatrix(0, rows, BATCH, 2 * BATCH))?;
            Ok(())
        })();
        let info = d.tree_merge_info().cloned();
        let (modes, sigma) = d.into_modes();
        (fate, modes, sigma, info)
    })
}

#[test]
fn tree_round_death_degrades_onto_the_survivors() {
    let a = data_matrix(Spectrum::Geometric, M, N, 62);
    let out = tree_death_run(&a);

    // The victim sees its own death; it never produced a tree round.
    assert_eq!(out[1].0, Err(CommError::RankDead { rank: 1 }));
    assert!(out[1].3.is_none(), "the victim must not report an executed tree");

    // Survivors complete with an executed 2-level tree (the plan was
    // resolved on the 4-rank world; capacity 4 covers the 3 survivors).
    for (r, (fate, _, sigma, info)) in out.iter().enumerate() {
        if r == 1 {
            continue;
        }
        assert_eq!(*fate, Ok(()), "rank {r} should have survived");
        assert_eq!(info.as_ref().expect("tree engaged").fanouts, vec![2, 2], "rank {r}");
        crate::harness::assert_descending(sigma);
        assert_eq!(sigma, &out[0].2, "survivors agree on the spectrum");
    }
}

#[test]
fn degraded_tree_run_is_a_bitwise_restart_of_the_survivors() {
    // The death fires at the entry barrier of the hierarchical
    // initialize, so the degraded run never saw a byte of the victim's
    // data: it must be bit-identical to a fresh 3-rank world streaming
    // the survivor blocks through the same tree configuration.
    let a = data_matrix(Spectrum::Geometric, M, N, 62);
    let out = tree_death_run(&a);

    let blocks = split_rows(&a, 4);
    let survivors = [0usize, 2, 3];
    let world = World::new(3);
    let replay = world.run(|comm| {
        let b = &blocks[survivors[comm.rank()]];
        let rows = b.rows();
        let cfg = tree_cfg().with_allow_degraded(true);
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.initialize(&b.submatrix(0, rows, 0, BATCH));
        d.incorporate_data(&b.submatrix(0, rows, BATCH, 2 * BATCH));
        let info = d.tree_merge_info().cloned();
        let (modes, sigma) = d.into_modes();
        (modes, sigma, info)
    });
    for (i, &phys) in survivors.iter().enumerate() {
        assert_eq!(replay[i].1, out[phys].2, "rank {phys}: σ must be bit-identical");
        assert_eq!(replay[i].0, out[phys].1, "rank {phys}: modes must be bit-identical");
        assert_eq!(replay[i].2, out[phys].3, "rank {phys}: tree diagnostics must match");
    }
}
