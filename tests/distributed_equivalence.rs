//! Cross-crate distributed pipelines: serial/parallel equivalence across
//! rank counts, the ncsim parallel-IO path, and traffic accounting.

use pyparsvd::data::burgers::{snapshot_matrix, BurgersConfig};
use pyparsvd::data::ncsim::{self, NcsimReader};
use pyparsvd::data::partition::split_rows;
use pyparsvd::linalg::validate::{max_principal_angle, spectrum_error};
use pyparsvd::prelude::*;

fn burgers_data() -> Matrix {
    snapshot_matrix(&BurgersConfig { grid_points: 384, snapshots: 48, ..BurgersConfig::default() })
}

#[test]
fn parallel_matches_serial_across_rank_counts() {
    let data = burgers_data();
    let k = 4;
    let batch = 12;
    // Pinned to F64: the serial/parallel agreement bound here is a
    // double-precision round-off contract (mixed mode's looser bound is
    // covered by the precision conformance suite).
    let cfg = SvdConfig::new(k)
        .with_forget_factor(0.95)
        .with_r1(48)
        .with_r2(48)
        .with_precision(Precision::F64);

    let mut serial = SerialStreamingSvd::new(cfg);
    serial.fit_batched(&data, batch);

    for n_ranks in [1, 2, 3, 5, 8] {
        let blocks = split_rows(&data, n_ranks);
        let world = World::new(n_ranks);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], batch);
            (d.gather_modes(0), d.singular_values().to_vec())
        });
        let err = spectrum_error(serial.singular_values(), &out[0].1);
        assert!(err < 1e-6, "{n_ranks} ranks: spectrum error {err}");
        let modes = out[0].0.as_ref().unwrap();
        let angle = max_principal_angle(serial.modes(), modes);
        assert!(angle < 1e-4, "{n_ranks} ranks: mode subspace angle {angle}");
    }
}

#[test]
fn randomized_parallel_close_to_deterministic_parallel() {
    let data = burgers_data();
    let k = 3;
    let blocks = split_rows(&data, 4);
    let base = SvdConfig::new(k).with_forget_factor(1.0).with_r1(24).with_r2(12);

    let run = |cfg: SvdConfig| {
        let world = World::new(4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], 16);
            d.singular_values().to_vec()
        });
        out[0].clone()
    };
    let det = run(base);
    let rand = run(base.with_low_rank(true).with_power_iterations(2).with_seed(11));
    for (d, r) in det.iter().zip(&rand) {
        assert!((d - r).abs() / d < 0.05, "deterministic {d} vs randomized {r}");
    }
}

#[test]
fn ncsim_hyperslab_pipeline_matches_in_memory() {
    let data = burgers_data();
    let path = std::env::temp_dir().join(format!("psvd_it_ncsim_{}.ncs", std::process::id()));
    ncsim::write(&path, "u", &data).unwrap();

    let k = 3;
    let cfg = SvdConfig::new(k).with_forget_factor(1.0).with_r1(48).with_r2(48);
    let n_ranks = 4;

    // In-memory reference.
    let blocks = split_rows(&data, n_ranks);
    let world_mem = World::new(n_ranks);
    let mem = world_mem.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.fit_batched(&blocks[comm.rank()], 12);
        (d.gather_modes(0), d.singular_values().to_vec())
    });

    // File-backed run: each rank reads only its hyperslab.
    let world_io = World::new(n_ranks);
    let path_ref = &path;
    let io = world_io.run(|comm| {
        let mut reader = NcsimReader::open(path_ref).unwrap();
        let local = reader.read_rank_block(comm.size(), comm.rank()).unwrap();
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.fit_batched(&local, 12);
        (d.gather_modes(0), d.singular_values().to_vec())
    });
    std::fs::remove_file(&path).ok();

    assert_eq!(mem[0].1, io[0].1, "file-backed run must be bit-identical");
    assert_eq!(mem[0].0, io[0].0);
}

#[test]
fn rank0_receives_the_gather_concentration() {
    let data = burgers_data();
    let blocks = split_rows(&data, 6);
    let cfg = SvdConfig::new(3).with_r1(10).with_r2(6);
    let world = World::new(6);
    world.run(|comm| {
        let _ = parallel_svd_once(comm, cfg, &blocks[comm.rank()]);
    });
    let stats = world.stats();
    // Rank 0 receives W blocks from everyone; everyone else receives only
    // the broadcast.
    for r in 1..6 {
        assert!(
            stats.recv_bytes(0) > stats.recv_bytes(r),
            "rank 0 should be the receive bottleneck: {} vs rank {r}: {}",
            stats.recv_bytes(0),
            stats.recv_bytes(r)
        );
    }
}

#[test]
fn weak_scaling_traffic_per_rank_is_flat() {
    // Weak scaling: per-rank problem size constant. APMOS sends r1 columns
    // of length N from each rank regardless of world size, so *per-rank*
    // sent bytes must stay constant as ranks grow — the structural reason
    // Figure 1(c) looks near-ideal.
    let rows_per_rank = 64;
    let n = 24;
    // Pin the flat gather: a PSVD_TREE_FANOUT-seeded merge tree changes
    // the per-rank payload shape (bounds ride the wire) by design.
    let cfg = SvdConfig::new(3).with_r1(8).with_r2(6).with_tree_fanout(0).with_tree_depth(0);
    let mut per_rank = Vec::new();
    for n_ranks in [2, 4, 8] {
        let world = World::new(n_ranks);
        world.run(|comm| {
            let local = Matrix::from_fn(rows_per_rank, n, |i, j| {
                (((comm.rank() * rows_per_rank + i) * 7 + j * 13) as f64 * 0.1).sin()
            });
            let _ = parallel_svd_once(comm, cfg, &local);
        });
        // Non-root ranks all send the same W block; measure rank 1.
        per_rank.push(world.stats().sent_bytes(1));
    }
    assert_eq!(per_rank[0], per_rank[1], "per-rank traffic must not grow with world size");
    assert_eq!(per_rank[1], per_rank[2]);
}

#[test]
fn simulated_clocks_grow_with_world_size_at_root() {
    // With a network model, rank 0's simulated time grows with the number
    // of gathered messages — the communication term of the scaling model.
    let rows_per_rank = 32;
    let n = 16;
    let cfg = SvdConfig::new(2).with_r1(8).with_r2(4);
    let clock_for = |n_ranks: usize| {
        let world = World::with_model(n_ranks, NetworkModel::slow_ethernet());
        let (_, clocks) = world.run_with_clocks(|comm| {
            let local = Matrix::from_fn(rows_per_rank, n, |i, j| {
                ((i * 3 + j * 5 + comm.rank()) as f64 * 0.2).cos()
            });
            let _ = parallel_svd_once(comm, cfg, &local);
        });
        clocks.iter().cloned().fold(0.0, f64::max)
    };
    let t4 = clock_for(4);
    let t16 = clock_for(16);
    assert!(t16 > t4, "more ranks -> more gather traffic -> later clock: {t4} vs {t16}");
}
