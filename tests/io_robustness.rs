//! Robustness of the IO and checkpoint formats against malformed input:
//! decoders must reject garbage with errors, never panic or misread.

use proptest::prelude::*;
use pyparsvd::core::{SerialStreamingSvd, SvdCheckpoint, SvdConfig};
use pyparsvd::data::ncsim::{self, write_v2, Codec, NcsimReader, V2Options};
use pyparsvd::linalg::Matrix;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("psvd_fuzz_{name}_{}", std::process::id()))
}

/// Shared body of the bit-flip property below and its named regression
/// cases: a single corrupted byte must either fail decoding or decode
/// into a structurally consistent checkpoint (sizes matching lengths) —
/// silent structural corruption is the only forbidden outcome.
fn checkpoint_bitflip_case(flip: usize) -> Result<(), String> {
    let mut s = SerialStreamingSvd::new(SvdConfig::new(3).with_forget_factor(1.0));
    s.initialize(&Matrix::from_fn(12, 6, |i, j| ((i + 2 * j) as f64).sin()));
    let mut bytes = s.checkpoint().to_bytes();
    let idx = flip % bytes.len();
    bytes[idx] ^= 0xFF;
    if let Ok(ckpt) = SvdCheckpoint::from_bytes(&bytes) {
        if ckpt.modes.cols() != ckpt.singular_values.len() {
            return Err(format!(
                "flip {flip}: decoded inconsistent checkpoint ({} mode cols, {} sigmas)",
                ckpt.modes.cols(),
                ckpt.singular_values.len()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ncsim_reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let path = tmp("garbage");
        std::fs::write(&path, &bytes).unwrap();
        // Opening may succeed only if the magic happens to match (it won't
        // for random bytes with overwhelming probability); either way, no
        // panic is allowed and errors must be clean.
        let _ = NcsimReader::open(&path);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ncsim_truncated_files_rejected(cut in 1usize..100) {
        let path = tmp("truncated");
        let a = Matrix::from_fn(8, 8, |i, j| (i * 8 + j) as f64);
        ncsim::write(&path, "v", &a).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = cut.min(full.len() - 1);
        std::fs::write(&path, &full[..full.len() - cut]).unwrap();
        // Header may still parse; the data read must then fail.
        if let Ok(mut r) = NcsimReader::open(&path) {
            prop_assert!(r.read_all().is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ncsim_v2_bitflips_never_panic(flip in 0usize..2048, xor in 1u8..=255) {
        // Flip one byte anywhere in a compressed v2 file: the reader must
        // either serve consistent data (the flip landed in slack it never
        // reads) or fail with a typed error — panics and misreads of the
        // requested shape are the forbidden outcomes.
        let path = tmp("v2_bitflip");
        let a = Matrix::from_fn(24, 5, |i, j| ((i * 5 + j) as f64 * 0.31).sin());
        write_v2(&path, "v", &a, V2Options { chunk_rows: 7, codec: Codec::ShuffleRle }).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = flip % bytes.len();
        bytes[idx] ^= xor;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(mut r) = NcsimReader::open(&path) {
            let mut dst: Matrix<f64> = Matrix::zeros(0, 0);
            if r.read_block_into(0, 24, 0, 5, &mut dst).is_ok() {
                prop_assert_eq!(dst.shape(), (24, 5));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ncsim_v2_garbage_chunk_tables_rejected(lens in proptest::collection::vec(any::<u64>(), 4)) {
        // Overwrite the patched chunk-length table with arbitrary values:
        // open-time validation or the block read must reject, not panic.
        let path = tmp("v2_chunktable");
        let a = Matrix::from_fn(16, 3, |i, j| (i * 3 + j) as f64);
        write_v2(&path, "v", &a, V2Options { chunk_rows: 4, codec: Codec::Raw }).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Header: magic(8) + name_len(4) + "v"(1) + rows(8) + cols(8)
        //         + dtype(1) + codec(1) + chunk_rows(8) = 39, then 4 chunk lens.
        for (k, len) in lens.iter().enumerate() {
            bytes[39 + 8 * k..39 + 8 * (k + 1)].copy_from_slice(&len.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(mut r) = NcsimReader::open(&path) {
            let mut dst: Matrix<f64> = Matrix::zeros(0, 0);
            let _ = r.read_block_into(0, 16, 0, 3, &mut dst);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SvdCheckpoint::from_bytes(&bytes);
    }

    #[test]
    fn checkpoint_bitflip_detected_or_consistent(flip in 0usize..200) {
        prop_assert!(checkpoint_bitflip_case(flip).is_ok());
    }
}

// Named regression cases promoted from io_robustness.proptest-regressions
// so the seeds keep running even when proptest shrinks differently (see
// DESIGN.md, "Promoting proptest regressions").

#[test]
fn regression_checkpoint_bitflip_flip_15() {
    // Seed `cc da0d9407…` shrank to flip = 15: the most-significant byte
    // of the header's row-count field, which inflates the promised payload
    // past any sane allocation — the overflow-checked decoder must reject.
    checkpoint_bitflip_case(15).unwrap();
}

#[test]
fn ncsim_header_only_file() {
    // A file containing exactly the header (zero-row variable) roundtrips.
    let path = tmp("header_only");
    let a = Matrix::zeros(0, 5);
    ncsim::write(&path, "empty", &a).unwrap();
    let mut r = NcsimReader::open(&path).unwrap();
    assert_eq!(r.rows(), 0);
    assert_eq!(r.cols(), 5);
    assert_eq!(r.read_all().unwrap().shape(), (0, 5));
    std::fs::remove_file(&path).ok();
}

#[test]
fn ncsim_large_name_rejected() {
    // Corrupt the name length field to a huge value: reader must refuse.
    let path = tmp("bigname");
    let a = Matrix::zeros(2, 2);
    ncsim::write(&path, "ok", &a).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(NcsimReader::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}
