//! Property-based tests of the message-passing substrate: random world
//! sizes, roots, message schedules, and payload shapes.

use proptest::prelude::*;
use pyparsvd::comm::collectives::{tree_allgather, tree_allreduce_sum, tree_bcast, tree_gather};
use pyparsvd::comm::{Communicator, NetworkModel, World};

#[test]
fn tree_collectives_bitwise_equal_flat_for_sizes_1_through_9() {
    // Pins the tree collectives to the flat Communicator default methods:
    // same payloads, same rank order, bit-for-bit — across every world
    // size the binomial tree can shape differently (powers of two, odd
    // sizes, and the degenerate single rank).
    for size in 1usize..=9 {
        let w = World::new(size);
        let out = w.run(|c| {
            // Irrational-ish payload values so any reassociation of the
            // data path would show up in the bits.
            let mine: Vec<f64> =
                (0..4).map(|j| (c.rank() as f64 + 1.0).sqrt() * (j as f64 + 0.37).ln()).collect();
            let flat_gather = c.gather(mine.clone(), 0);
            let tree_gather_out = tree_gather(c, mine.clone(), 0);
            let flat_allgather = c.allgather(mine.clone());
            let tree_allgather_out = tree_allgather(c, mine.clone());
            let seed = if c.rank() == 0 { Some(mine.clone()) } else { None };
            let flat_bcast = c.bcast(seed.clone(), 0);
            let tree_bcast_out = tree_bcast(c, seed, 0);
            (
                (flat_gather, tree_gather_out),
                (flat_allgather, tree_allgather_out),
                (flat_bcast, tree_bcast_out),
            )
        });
        for (rank, (gather, allgather, bcast)) in out.into_iter().enumerate() {
            assert_eq!(gather.0, gather.1, "gather diverged at size {size}, rank {rank}");
            assert_eq!(allgather.0, allgather.1, "allgather diverged at size {size}, rank {rank}");
            assert_eq!(bcast.0, bcast.1, "bcast diverged at size {size}, rank {rank}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gather_any_size_any_root(size in 1usize..10, root_seed in 0usize..100) {
        let root = root_seed % size;
        let w = World::new(size);
        let out = w.run(|c| c.gather(c.rank() as f64 * 3.0, root));
        for (r, o) in out.iter().enumerate() {
            if r == root {
                let expected: Vec<f64> = (0..size).map(|i| i as f64 * 3.0).collect();
                prop_assert_eq!(o.as_ref(), Some(&expected));
            } else {
                prop_assert!(o.is_none());
            }
        }
    }

    #[test]
    fn tree_and_flat_collectives_agree(size in 1usize..12, root_seed in 0usize..100) {
        let root = root_seed % size;
        let w = World::new(size);
        let out = w.run(|c| {
            let flat = c.gather(vec![c.rank() as f64; 3], root);
            let tree = tree_gather(c, vec![c.rank() as f64; 3], root);
            let fb = c.bcast(if c.rank() == root { Some(c.rank()) } else { None }, root);
            let tb = tree_bcast(c, if c.rank() == root { Some(c.rank()) } else { None }, root);
            (flat == tree, fb == tb)
        });
        for (g_eq, b_eq) in out {
            prop_assert!(g_eq && b_eq);
        }
    }

    #[test]
    fn allreduce_matches_local_sum(size in 1usize..8, vals in proptest::collection::vec(-100.0f64..100.0, 1..6)) {
        let w = World::new(size);
        let vals_ref = &vals;
        let out = w.run(|c| {
            let mine: Vec<f64> = vals_ref.iter().map(|v| v * (c.rank() + 1) as f64).collect();
            (c.allreduce_sum(mine.clone()), tree_allreduce_sum(c, mine))
        });
        // Expected: sum over ranks of v * (r+1) = v * size(size+1)/2.
        let factor = (size * (size + 1) / 2) as f64;
        for (flat, tree) in out {
            for (j, v) in vals.iter().enumerate() {
                prop_assert!((flat[j] - v * factor).abs() < 1e-9 * (1.0 + v.abs() * factor));
                prop_assert!((tree[j] - flat[j]).abs() < 1e-9 * (1.0 + flat[j].abs()));
            }
        }
    }

    #[test]
    fn interleaved_p2p_schedules_deliver(size in 2usize..6, n_msgs in 1usize..8) {
        // Every rank sends n_msgs tagged messages to every other rank, then
        // receives them in REVERSE tag order — exercising the out-of-order
        // buffering under arbitrary interleavings.
        let w = World::new(size);
        let out = w.run(|c| {
            for dst in 0..c.size() {
                if dst == c.rank() {
                    continue;
                }
                for m in 0..n_msgs {
                    c.send((c.rank() * 1000 + m) as u64, dst, m as u64);
                }
            }
            let mut sum = 0u64;
            for src in 0..c.size() {
                if src == c.rank() {
                    continue;
                }
                for m in (0..n_msgs).rev() {
                    let v: u64 = c.recv(src, m as u64);
                    prop_assert_eq!(v, (src * 1000 + m) as u64);
                    sum += v;
                }
            }
            Ok(sum)
        });
        for r in out {
            prop_assert!(r.is_ok());
        }
    }

    #[test]
    fn traffic_conservation(size in 2usize..8) {
        // Whatever the collective mix, total sent == total received.
        let w = World::new(size);
        w.run(|c| {
            let _ = c.allgather(vec![0.0f64; c.rank() + 1]);
            let _ = tree_gather(c, c.rank() as f64, 0);
            c.barrier();
        });
        let sent: u64 = (0..size).map(|r| w.stats().sent_bytes(r)).sum();
        let recv: u64 = (0..size).map(|r| w.stats().recv_bytes(r)).sum();
        prop_assert_eq!(sent, recv);
        let sent_m: u64 = (0..size).map(|r| w.stats().sent_messages(r)).sum();
        let recv_m: u64 = (0..size).map(|r| w.stats().recv_messages(r)).sum();
        prop_assert_eq!(sent_m, recv_m);
    }

    #[test]
    fn simulated_clocks_never_regress(size in 2usize..6) {
        let w = World::with_model(size, NetworkModel::slow_ethernet());
        let (_, clocks) = w.run_with_clocks(|c| {
            let before = c.now();
            let _ = c.allreduce_sum(vec![1.0; 10]);
            let mid = c.now();
            assert!(mid >= before, "clock regressed across a collective");
            c.barrier();
            assert!(c.now() >= mid, "clock regressed across a barrier");
        });
        for t in clocks {
            prop_assert!(t >= 0.0 && t.is_finite());
        }
    }
}
