//! Property-based tests of the eigen/FFT/pinv extension stack.

use proptest::prelude::*;
use pyparsvd::linalg::cmatrix::cvec_norm;
use pyparsvd::linalg::complex::Complex;
use pyparsvd::linalg::eig_general::general_eig;
use pyparsvd::linalg::fft::{fft, rfft};
use pyparsvd::linalg::gemm::matmul;
use pyparsvd::linalg::lanczos::{lanczos_svd, LanczosConfig};
use pyparsvd::linalg::pinv::{lstsq, pseudoinverse};
use pyparsvd::linalg::random::seeded_rng;
use pyparsvd::linalg::schur::{real_schur, schur_eigenvalues};
use pyparsvd::linalg::Matrix;

fn square_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-2.0f64..2.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schur_similarity_and_trace(a in square_matrix(10)) {
        let f = real_schur(&a);
        let rec = matmul(&matmul(&f.q, &f.t), &f.q.transpose());
        prop_assert!((&rec - &a).max_abs() < 1e-8 * a.max_abs().max(1.0));
        // Eigenvalue sum equals the trace; imaginary parts cancel.
        let ev = schur_eigenvalues(&f.t);
        let tr: f64 = (0..a.rows()).map(|i| a[(i, i)]).sum();
        let sum_re: f64 = ev.iter().map(|z| z.re).sum();
        let sum_im: f64 = ev.iter().map(|z| z.im).sum();
        prop_assert!((sum_re - tr).abs() < 1e-8 * (1.0 + tr.abs()));
        prop_assert!(sum_im.abs() < 1e-8);
        // Complex eigenvalues come in conjugate pairs.
        let mut ims: Vec<f64> = ev.iter().map(|z| z.im).filter(|i| i.abs() > 1e-12).collect();
        ims.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(ims.len() % 2, 0);
        for i in 0..ims.len() / 2 {
            prop_assert!((ims[i] + ims[ims.len() - 1 - i]).abs() < 1e-9);
        }
    }

    #[test]
    fn general_eig_residuals_small(a in square_matrix(8)) {
        let e = general_eig(&a);
        let scale = a.max_abs().max(1.0);
        for (j, &r) in e.residuals.iter().enumerate() {
            // Defective or tightly clustered spectra can legitimately have
            // larger eigenvector residuals; random continuous matrices are
            // simple with probability 1, so a loose bound still catches
            // real implementation bugs.
            prop_assert!(r < 1e-5 * scale, "residual {} at eigenvalue {:?}", r, e.values[j]);
            let v = e.vectors.col(j);
            prop_assert!((cvec_norm(&v) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_linearity_and_parseval(
        n in 2usize..40,
        seed in 0u64..500,
    ) {
        use pyparsvd::linalg::random::gaussian_matrix;
        let g = gaussian_matrix(2, n, &mut seeded_rng(seed));
        let x: Vec<Complex> = (0..n).map(|j| Complex::new(g[(0, j)], g[(1, j)])).collect();
        let y: Vec<Complex> = (0..n).map(|j| Complex::new(g[(1, j)], -g[(0, j)])).collect();
        // Linearity.
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for i in 0..n {
            prop_assert!((fsum[i] - (fx[i] + fy[i])).abs() < 1e-9);
        }
        // Parseval.
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = fx.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-8 * (1.0 + te));
    }

    #[test]
    fn rfft_hermitian_symmetry(n in 2usize..32, seed in 0u64..500) {
        use pyparsvd::linalg::random::gaussian_matrix;
        let g = gaussian_matrix(1, n, &mut seeded_rng(seed));
        let x: Vec<f64> = (0..n).map(|j| g[(0, j)]).collect();
        let f = rfft(&x);
        // Real input: F[k] = conj(F[n-k]).
        for k in 1..n {
            prop_assert!((f[k] - f[n - k].conj()).abs() < 1e-9);
        }
        prop_assert!(f[0].im.abs() < 1e-9);
    }

    #[test]
    fn pinv_penrose_conditions(
        rows in 2usize..10,
        cols in 2usize..10,
        seed in 0u64..500,
    ) {
        use pyparsvd::linalg::random::gaussian_matrix;
        let a = gaussian_matrix(rows, cols, &mut seeded_rng(seed));
        let p = pseudoinverse(&a);
        let apa = matmul(&matmul(&a, &p), &a);
        prop_assert!((&apa - &a).max_abs() < 1e-8);
        let pap = matmul(&matmul(&p, &a), &p);
        prop_assert!((&pap - &p).max_abs() < 1e-8 * (1.0 + p.max_abs()));
    }

    #[test]
    fn lstsq_residual_orthogonal_to_range(
        rows in 4usize..16,
        cols in 2usize..4,
        seed in 0u64..500,
    ) {
        use pyparsvd::linalg::gemm::{matvec, matvec_t};
        use pyparsvd::linalg::random::gaussian_matrix;
        let a = gaussian_matrix(rows, cols, &mut seeded_rng(seed));
        let b: Vec<f64> = (0..rows).map(|i| ((i * 7 + 1) as f64 * 0.3).sin()).collect();
        let sol = lstsq(&a, &b);
        let r: Vec<f64> = matvec(&a, &sol.x).iter().zip(&b).map(|(p, q)| p - q).collect();
        for v in matvec_t(&a, &r) {
            prop_assert!(v.abs() < 1e-8, "normal equations violated: {}", v);
        }
    }

    #[test]
    fn lanczos_matches_full_svd_leading_value(
        m in 10usize..30,
        n in 4usize..10,
        seed in 0u64..200,
    ) {
        use pyparsvd::linalg::random::gaussian_matrix;
        let a = gaussian_matrix(m, n, &mut seeded_rng(seed));
        let mut rng = seeded_rng(seed + 1);
        let l = lanczos_svd(&a, &LanczosConfig::new(2).with_extra_steps(n), &mut rng);
        let f = pyparsvd::linalg::svd(&a);
        prop_assert!((l.s[0] - f.s[0]).abs() < 1e-7 * f.s[0].max(1.0), "{} vs {}", l.s[0], f.s[0]);
    }
}
