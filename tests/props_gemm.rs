//! Property tests for the packed parallel GEMM engine: agreement with the
//! serial reference kernels on arbitrary rectangular shapes (including
//! degenerate and tile-boundary-straddling ones), the micro-kernel matrix
//! (every available SIMD kernel against the scalar oracle), and bitwise
//! determinism across kernel thread counts per fixed kernel.

use proptest::prelude::*;
use psvd_linalg::gemm::{self, kernels, packed, reference, Blocking, BlockingError};
use psvd_linalg::par;
use psvd_linalg::random::{gaussian_matrix, seeded_rng};
use psvd_linalg::Matrix;

/// Absolute tolerance for packed-vs-reference comparisons: the two tiers
/// sum in different orders, so they differ by rounding only. Gaussian
/// entries are O(1) and inner dimensions stay < 512 here, so accumulated
/// error is far below this.
const TOL: f64 = 1e-10;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    gaussian_matrix(rows, cols, &mut seeded_rng(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packed_matmul_matches_reference(
        m in 1usize..48,
        k in 0usize..70,
        n in 1usize..48,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed.wrapping_add(1));
        let diff = (&packed::matmul(&a, &b) - &reference::matmul(&a, &b)).max_abs();
        prop_assert!(diff < TOL, "({m},{k},{n}) diverged by {diff}");
    }

    #[test]
    fn packed_tn_matches_reference(
        k in 1usize..60,
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(k, m, seed);
        let b = rand_mat(k, n, seed.wrapping_add(2));
        let diff = (&packed::matmul_tn(&a, &b) - &reference::matmul_tn(&a, &b)).max_abs();
        prop_assert!(diff < TOL, "({k},{m},{n}) diverged by {diff}");
    }

    #[test]
    fn packed_nt_matches_reference(
        m in 1usize..40,
        k in 1usize..60,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(n, k, seed.wrapping_add(3));
        let diff = (&packed::matmul_nt(&a, &b) - &reference::matmul_nt(&a, &b)).max_abs();
        prop_assert!(diff < TOL, "({m},{k},{n}) diverged by {diff}");
    }

    #[test]
    fn packed_gram_matches_reference_and_is_exactly_symmetric(
        rows in 1usize..80,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(rows, n, seed);
        let g = packed::gram(&a);
        let diff = (&g - &reference::matmul_tn(&a, &a)).max_abs();
        prop_assert!(diff < TOL, "({rows},{n}) diverged by {diff}");
        prop_assert!((&g - &g.transpose()).max_abs() == 0.0, "gram not exactly symmetric");
    }

    #[test]
    fn packed_matvecs_bitwise_match_reference(
        m in 1usize..80,
        n in 1usize..80,
        seed in 0u64..1_000,
    ) {
        // matvec/matvec_t preserve the reference accumulation order per
        // output element, so equality here is exact, not approximate.
        let a = rand_mat(m, n, seed);
        let x: Vec<f64> = rand_mat(n, 1, seed.wrapping_add(4)).as_slice().to_vec();
        prop_assert_eq!(packed::matvec(&a, &x), reference::matvec(&a, &x));
        let xt: Vec<f64> = rand_mat(m, 1, seed.wrapping_add(5)).as_slice().to_vec();
        prop_assert_eq!(packed::matvec_t(&a, &xt), reference::matvec_t(&a, &xt));
    }
}

/// Shapes chosen to land exactly on, one under, and one over the engine's
/// tile edges (MR = 4, NR = 8, MC = 128, KC = 256).
#[test]
fn packed_tile_boundary_shapes_match_reference() {
    let dims = [1usize, 3, 4, 5, 7, 8, 9, 127, 128, 129];
    let deep = [255usize, 256, 257];
    for (di, &m) in dims.iter().enumerate() {
        let n = dims[(di + 3) % dims.len()];
        let k = deep[di % deep.len()];
        let a = rand_mat(m, k, di as u64);
        let b = rand_mat(k, n, di as u64 + 100);
        let diff = (&packed::matmul(&a, &b) - &reference::matmul(&a, &b)).max_abs();
        assert!(diff < TOL, "({m},{k},{n}) diverged by {diff}");
    }
}

/// Degenerate shapes: empty inner dimension, single row, single column.
#[test]
fn packed_degenerate_shapes() {
    assert_eq!(
        packed::matmul(&Matrix::<f64>::zeros(5, 0), &Matrix::zeros(0, 7)),
        Matrix::zeros(5, 7)
    );
    let row = rand_mat(1, 50, 7);
    let col = rand_mat(50, 1, 8);
    assert!((&packed::matmul(&row, &col) - &reference::matmul(&row, &col)).max_abs() < TOL);
    assert!((&packed::matmul(&col, &row) - &reference::matmul(&col, &row)).max_abs() < TOL);
    assert_eq!(packed::gram(&Matrix::<f64>::zeros(0, 4)), Matrix::zeros(4, 4));
}

/// The headline guarantee: every public entry point returns bit-for-bit
/// identical results for any thread count. Runs serially over the thread
/// counts inside one test function because `set_num_threads` is
/// process-global.
#[test]
fn results_bitwise_identical_across_thread_counts() {
    // Big enough that the adaptive entry points take the packed path
    // (2 m n k >= 2^20) and that the row partition actually splits.
    let a = rand_mat(90, 97, 11);
    let b = rand_mat(97, 93, 12);
    let c = rand_mat(90, 93, 14); // same row count as a, for AᵀC
    let d = rand_mat(93, 97, 15); // same col count as a, for ADᵀ
    let x: Vec<f64> = rand_mat(97, 1, 13).as_slice().to_vec();

    par::set_num_threads(1);
    let base_mm = gemm::matmul(&a, &b);
    let base_tn = gemm::matmul_tn(&a, &c);
    let base_nt = gemm::matmul_nt(&a, &d);
    let base_gram = gemm::gram(&a);
    let base_mv = gemm::matvec(&a, &x);
    let base_qr = psvd_linalg::thin_qr(&a);

    for threads in [2usize, 4, 8] {
        par::set_num_threads(threads);
        assert_eq!(gemm::matmul(&a, &b), base_mm, "matmul bits changed at {threads} threads");
        assert_eq!(gemm::matmul_tn(&a, &c), base_tn, "tn bits changed at {threads}");
        assert_eq!(gemm::matmul_nt(&a, &d), base_nt, "nt bits changed at {threads}");
        assert_eq!(gemm::gram(&a), base_gram, "gram bits changed at {threads} threads");
        assert_eq!(gemm::matvec(&a, &x), base_mv, "matvec bits changed at {threads} threads");
        let f = psvd_linalg::thin_qr(&a);
        assert_eq!(f.q, base_qr.q, "QR Q bits changed at {threads} threads");
        assert_eq!(f.r, base_qr.r, "QR R bits changed at {threads} threads");
    }
    par::set_num_threads(0);
}

/// The adaptive dispatch is a pure size test, so small problems stay on
/// the reference path and match it exactly.
#[test]
fn small_problems_take_reference_path_exactly() {
    let a = rand_mat(12, 9, 21);
    let b = rand_mat(9, 10, 22);
    assert_eq!(gemm::matmul(&a, &b), reference::matmul(&a, &b));
    assert_eq!(gemm::gram(&a), reference::gram(&a));
}

// --- Micro-kernel matrix ----------------------------------------------
//
// Every kernel the host can run, against the scalar determinism oracle.
// Non-fused kernels (pure SIMD data parallelism over the oracle's op
// sequence) must match the oracle bit for bit; fused (FMA) kernels round
// once per multiply-add and get a rounding tolerance instead — but both
// classes must be bitwise self-consistent across thread counts.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_matrix_matches_scalar_oracle(
        m in 1usize..60,
        k in 1usize..80,
        n in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed.wrapping_add(6));
        let scalar = kernels::by_name::<f64>("scalar").expect("scalar kernel always present");
        let oracle = packed::matmul_with(scalar, &a, &b);
        for &kern in kernels::available::<f64>() {
            let c = packed::matmul_with(kern, &a, &b);
            if kern.fused() {
                let diff = (&c - &oracle).max_abs();
                prop_assert!(diff < TOL, "{} ({m},{k},{n}) diverged by {diff}", kern.name());
            } else {
                prop_assert_eq!(
                    &c, &oracle,
                    "{} ({},{},{}) must be bitwise equal to the scalar oracle",
                    kern.name(), m, k, n
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The f32 kernel matrix holds to the same contract as the f64 one:
    /// every non-fused kernel is bitwise equal to the f32 scalar oracle,
    /// and fused (FMA) kernels differ by rounding only. Tolerance is the
    /// f64 bound scaled by the epsilon ratio (eps_f32 / eps_f64 ≈ 2^29):
    /// O(1) Gaussian entries, inner dim < 80.
    #[test]
    fn f32_kernel_matrix_matches_f32_scalar_oracle(
        m in 1usize..60,
        k in 1usize..80,
        n in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let a: Matrix<f32> = rand_mat(m, k, seed).cast();
        let b: Matrix<f32> = rand_mat(k, n, seed.wrapping_add(6)).cast();
        let scalar = kernels::by_name::<f32>("scalar").expect("scalar kernel always present");
        let oracle = packed::matmul_with(scalar, &a, &b);
        for &kern in kernels::available::<f32>() {
            let c = packed::matmul_with(kern, &a, &b);
            if kern.fused() {
                let diff = (&c - &oracle).max_abs();
                prop_assert!(diff < 1e-4, "{} ({m},{k},{n}) diverged by {diff}", kern.name());
            } else {
                prop_assert_eq!(
                    &c, &oracle,
                    "{} ({},{},{}) must be bitwise equal to the f32 scalar oracle",
                    kern.name(), m, k, n
                );
            }
        }
    }

    /// Narrowing the operands commutes with the product up to f32
    /// rounding: GEMM at f32 on demoted inputs tracks the f64 product.
    #[test]
    fn f32_gemm_tracks_f64_gemm(
        m in 1usize..40,
        k in 1usize..60,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, k, seed.wrapping_add(9));
        let b = rand_mat(k, n, seed.wrapping_add(10));
        let wide = gemm::matmul(&a, &b);
        let narrow = gemm::matmul(&a.cast::<f32>(), &b.cast::<f32>());
        let scale = wide.max_abs().max(1.0);
        let diff = (&narrow.cast::<f64>() - &wide).max_abs();
        // k + 1 roundings of O(scale) terms at eps_f32.
        let bound = (k as f64 + 2.0) * f32::EPSILON as f64 * scale * 4.0;
        prop_assert!(diff < bound, "({m},{k},{n}) diff {diff} exceeds {bound}");
    }
}

/// Per-kernel boundary shapes: exactly on, one under, and one over each
/// kernel's own MR/NR tile edges and the KC/MC block edges of its default
/// blocking — where packing zero-pads and writeback clips.
#[test]
fn kernel_matrix_boundary_shapes() {
    let scalar = kernels::by_name::<f64>("scalar").expect("scalar kernel always present");
    for &kern in kernels::available::<f64>() {
        let blk = Blocking::default_for(kern);
        let (mr, nr) = (kern.mr(), kern.nr());
        let ms = [mr - 1, mr, mr + 1, blk.mc - 1, blk.mc, blk.mc + 1];
        let ns = [nr.max(2) - 1, nr, nr + 1];
        let ks = [blk.kc - 1, blk.kc, blk.kc + 1];
        for (i, &m) in ms.iter().enumerate() {
            let m = m.max(1);
            let n = ns[i % ns.len()];
            let k = ks[i % ks.len()];
            let a = rand_mat(m, k, 31 + i as u64);
            let b = rand_mat(k, n, 131 + i as u64);
            let oracle = packed::matmul_with(scalar, &a, &b);
            let c = packed::matmul_with(kern, &a, &b);
            if kern.fused() {
                let diff = (&c - &oracle).max_abs();
                assert!(diff < TOL, "{} ({m},{k},{n}) diverged by {diff}", kern.name());
            } else {
                assert_eq!(c, oracle, "{} ({m},{k},{n}) moved bits", kern.name());
            }
            // Transposed entries run the same kernel through packing.
            let at = a.transpose();
            let c_tn = packed::matmul_tn_with(kern, &at, &b);
            if kern.fused() {
                assert!((&c_tn - &oracle).max_abs() < TOL, "{} tn", kern.name());
            } else {
                assert_eq!(c_tn, oracle, "{} tn ({m},{k},{n}) moved bits", kern.name());
            }
        }
    }
}

/// Bitwise determinism across thread counts, per fixed kernel, on both a
/// square-ish shape (full blocked path) and a tall-skinny shape (the
/// streaming path with a partial bottom strip).
#[test]
fn every_kernel_is_thread_count_invariant() {
    for &(m, k, n) in &[(137usize, 95usize, 71usize), (2048, 48, 32), (2043, 64, 24)] {
        let a = rand_mat(m, k, 41);
        let b = rand_mat(k, n, 42);
        for &kern in kernels::available::<f64>() {
            par::set_num_threads(1);
            let baseline = packed::matmul_with(kern, &a, &b);
            for threads in [2usize, 3, 4, 8] {
                par::set_num_threads(threads);
                let c = packed::matmul_with(kern, &a, &b);
                assert_eq!(
                    c,
                    baseline,
                    "{} ({m},{k},{n}) x {threads} threads changed bits",
                    kern.name()
                );
            }
            par::set_num_threads(0);
        }
    }
}

/// The tall-skinny dispatch shape (the streaming-SVD regime that used to
/// regress below the reference kernels) agrees with the reference result
/// through the public adaptive entry point.
#[test]
fn tall_skinny_dispatch_matches_reference() {
    let a = rand_mat(8192, 64, 51);
    let b = rand_mat(64, 64, 52);
    let diff = (&gemm::matmul(&a, &b) - &reference::matmul(&a, &b)).max_abs();
    assert!(diff < TOL, "tall-skinny dispatch diverged by {diff}");
}

/// Blocking validation: the autotuner's inputs are checked against the
/// kernel tile, so a bad profile or grid candidate fails loudly.
#[test]
fn blocking_validation_rejects_misaligned_parameters() {
    let scalar = kernels::by_name::<f64>("scalar").expect("scalar kernel always present");
    assert!(Blocking::try_new(128, 256, 4096, scalar).is_ok());
    assert!(matches!(
        Blocking::try_new(127, 256, 4096, scalar),
        Err(BlockingError::McMisaligned { .. })
    ));
    assert!(matches!(
        Blocking::try_new(128, 256, 4097, scalar),
        Err(BlockingError::NcMisaligned { .. })
    ));
    assert!(matches!(Blocking::try_new(128, 0, 4096, scalar), Err(BlockingError::Zero(_))));
    for &kern in kernels::available::<f64>() {
        let d = Blocking::default_for(kern);
        assert!(Blocking::try_new(d.mc, d.kc, d.nc, kern).is_ok(), "{}", kern.name());
    }
}

/// `autotune()` reports the process resolution: a blocking valid for the
/// selected kernel, with a coherent source label. (If another test
/// already resolved blocking, the existing resolution is reported — the
/// one-shot result is immutable by design.)
#[test]
fn autotune_reports_valid_blocking() {
    let report = gemm::autotune();
    let kern = kernels::selected::<f64>();
    assert_eq!(report.kernel, kern.name());
    assert!(
        Blocking::try_new(report.blocking.mc, report.blocking.kc, report.blocking.nc, kern).is_ok()
    );
    assert!(["default", "tuned", "profile"].contains(&report.source.label()));
    let (blk, source) = gemm::current_blocking();
    assert_eq!(blk, report.blocking);
    assert_eq!(source.label(), report.source.label());
    for cand in &report.candidates {
        assert!(cand.gflops >= 0.0);
        assert!(Blocking::try_new(cand.mc, cand.kc, cand.nc, kern).is_ok());
    }
}
