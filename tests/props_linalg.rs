//! Property-based tests of the dense kernels' contracts.
//!
//! Strategies draw random shapes and entries; the properties are the
//! algebraic identities every caller of this workspace relies on.

use proptest::prelude::*;
use pyparsvd::linalg::gemm::{gram, matmul, matmul_tn};
use pyparsvd::linalg::norms::orthogonality_error;
use pyparsvd::linalg::qr::{reconstruction_error, thin_qr};
use pyparsvd::linalg::snapshots::generate_right_vectors;
use pyparsvd::linalg::svd::{svd, svd_with, SvdMethod};
use pyparsvd::linalg::Matrix;

/// A random matrix with entries in [-1, 1] and shape within bounds.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1.0f64..1.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// A random tall matrix (rows >= cols).
fn tall_matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(max_rows, max_cols).prop_map(|m| {
        if m.rows() >= m.cols() {
            m
        } else {
            m.transpose()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in matrix_strategy(24, 24)) {
        let f = thin_qr(&a);
        prop_assert!(reconstruction_error(&a, &f) < 1e-10);
        prop_assert!(orthogonality_error(&f.q) < 1e-10);
        // R upper-triangular with non-negative diagonal.
        for i in 0..f.r.rows() {
            prop_assert!(f.r[(i, i)] >= 0.0);
            for j in 0..i.min(f.r.cols()) {
                prop_assert!(f.r[(i, j)] == 0.0);
            }
        }
    }

    #[test]
    fn svd_contract_holds(a in matrix_strategy(20, 20)) {
        let f = svd(&a);
        prop_assert!(f.reconstruction_error(&a) < 1e-9);
        prop_assert!(orthogonality_error(&f.u) < 1e-9);
        prop_assert!(orthogonality_error(&f.vt.transpose()) < 1e-9);
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &x in &f.s {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    fn svd_kernels_agree(a in tall_matrix_strategy(18, 10)) {
        let gk = svd_with(&a, SvdMethod::GolubKahan);
        let jc = svd_with(&a, SvdMethod::Jacobi);
        let scale = jc.s.first().copied().unwrap_or(0.0).max(1e-12);
        for (x, y) in gk.s.iter().zip(&jc.s) {
            prop_assert!((x - y).abs() / scale < 1e-8, "GK {} vs Jacobi {}", x, y);
        }
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius(a in matrix_strategy(16, 16)) {
        let f = svd(&a);
        let fro = a.frobenius_norm();
        if let Some(&s0) = f.s.first() {
            prop_assert!(s0 <= fro + 1e-9, "sigma_0 {} > ||A||_F {}", s0, fro);
            // And Frobenius equals the l2 norm of the spectrum.
            let spec_fro: f64 = f.s.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((spec_fro - fro).abs() < 1e-8 * fro.max(1.0));
        }
    }

    #[test]
    fn truncated_svd_error_is_tail_energy(a in matrix_strategy(16, 12)) {
        let f = svd(&a);
        let k = f.s.len() / 2;
        let trunc = f.truncated(k);
        let err = (&a - &trunc.reconstruct()).frobenius_norm();
        let tail: f64 = f.s[k..].iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((err - tail).abs() < 1e-8 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn gram_is_psd_and_symmetric(a in matrix_strategy(20, 10)) {
        let g = gram(&a);
        prop_assert!((&g - &g.transpose()).max_abs() == 0.0);
        let e = pyparsvd::linalg::eig::sym_eig(&g);
        for &l in &e.values {
            prop_assert!(l >= -1e-9, "Gram eigenvalue {} negative", l);
        }
    }

    #[test]
    fn method_of_snapshots_matches_svd(a in tall_matrix_strategy(24, 8)) {
        let (_, s_mos) = generate_right_vectors(&a, a.cols());
        let f = svd(&a);
        let scale = f.s.first().copied().unwrap_or(0.0).max(1e-12);
        for (x, y) in s_mos.iter().zip(&f.s) {
            // Gram squaring costs accuracy on tiny values; compare
            // relative to the leading singular value.
            prop_assert!((x - y).abs() / scale < 1e-6, "MOS {} vs SVD {}", x, y);
        }
    }

    #[test]
    fn transpose_product_identities(a in matrix_strategy(12, 10), b_cols in 1usize..8) {
        // (AᵀB) computed fused equals the explicit transpose product.
        let b = Matrix::from_fn(a.rows(), b_cols, |i, j| ((i * 3 + j * 7) as f64 * 0.1).sin());
        let fused = matmul_tn(&a, &b);
        let explicit = matmul(&a.transpose(), &b);
        prop_assert!((&fused - &explicit).max_abs() < 1e-11);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(10, 8),
        seed in 0u64..1000,
    ) {
        let b = Matrix::from_fn(a.cols(), 6, |i, j| (((i + j) as u64 + seed) as f64 * 0.01).cos());
        let c = Matrix::from_fn(a.cols(), 6, |i, j| (((i * j) as u64 + seed) as f64 * 0.02).sin());
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        prop_assert!((&lhs - &rhs).max_abs() < 1e-11);
    }
}
