//! Property tests for the `ncsim` container: v1 and v2 round-trips are
//! bit-exact across chunkings, dtypes and codecs; hyperslab reads match
//! in-core slicing; malformed or future-versioned files are rejected with
//! typed errors, never panics.

use proptest::prelude::*;
use pyparsvd::data::ncsim::{self, write_v2, Codec, NcsimReader, V2Options};
use pyparsvd::linalg::{Matrix, Scalar};

fn tmp(name: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("psvd_props_ncsim_{name}_{case}_{}", std::process::id()))
}

/// A deterministic but byte-diverse test matrix: mixes smooth fields
/// (compressible under shuffle+RLE) with sign flips and exact zeros.
fn sample<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i * cols + j) as f64 + seed as f64 * 0.618;
        let v = if (i + j) % 7 == 0 { 0.0 } else { (x * 0.173).sin() * 1e3 + i as f64 };
        T::from_f64(v)
    })
}

fn roundtrip_case<T: Scalar>(rows: usize, cols: usize, chunk_rows: usize, codec: Codec, case: u64) {
    let a: Matrix<T> = sample(rows, cols, case);
    let path = tmp(T::NAME, case);
    write_v2(&path, "var", &a, V2Options { chunk_rows, codec }).unwrap();

    let mut r = NcsimReader::open(&path).unwrap();
    assert_eq!(r.header().version, 2);
    assert_eq!((r.rows(), r.cols()), (rows, cols));

    // Full read is bit-exact.
    let mut full = Matrix::zeros(0, 0);
    r.read_block_into(0, rows, 0, cols, &mut full).unwrap();
    assert_eq!(full, a, "full v2 read must be bit-exact");

    // Every aligned and unaligned hyperslab matches in-core slicing.
    if rows > 2 && cols > 1 {
        let (r0, r1) = (rows / 3, rows - rows / 4);
        let (c0, c1) = (cols / 2, cols);
        let mut block = Matrix::zeros(0, 0);
        r.read_block_into(r0, r1, c0, c1, &mut block).unwrap();
        assert_eq!(block, a.submatrix(r0, r1, c0, c1), "hyperslab must be bit-exact");
    }

    // Out-of-range requests are typed errors, not panics.
    let mut sink: Matrix<T> = Matrix::zeros(0, 0);
    assert!(r.read_block_into(0, rows + 1, 0, cols, &mut sink).is_err());
    assert!(r.read_block_into(0, rows, cols, cols + 1, &mut sink).err().is_some());

    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn v2_roundtrip_f64(
        rows in 0usize..60,
        cols in 1usize..20,
        chunk_rows in 1usize..70,
        rle in any::<bool>(),
        case in any::<u64>(),
    ) {
        let codec = if rle { Codec::ShuffleRle } else { Codec::Raw };
        roundtrip_case::<f64>(rows, cols, chunk_rows, codec, case);
    }

    #[test]
    fn v2_roundtrip_f32(
        rows in 0usize..60,
        cols in 1usize..20,
        chunk_rows in 1usize..70,
        rle in any::<bool>(),
        case in any::<u64>(),
    ) {
        let codec = if rle { Codec::ShuffleRle } else { Codec::Raw };
        roundtrip_case::<f32>(rows, cols, chunk_rows, codec, case);
    }

    #[test]
    fn v1_and_v2_agree(rows in 1usize..40, cols in 1usize..12, case in any::<u64>()) {
        let a: Matrix<f64> = sample(rows, cols, case);
        let p1 = tmp("v1", case);
        let p2 = tmp("v2", case);
        ncsim::write(&p1, "var", &a).unwrap();
        write_v2(&p2, "var", &a, V2Options { chunk_rows: 8, codec: Codec::ShuffleRle }).unwrap();
        let mut b1 = Matrix::zeros(0, 0);
        let mut b2 = Matrix::zeros(0, 0);
        NcsimReader::open(&p1).unwrap().read_block_into(0, rows, 0, cols, &mut b1).unwrap();
        NcsimReader::open(&p2).unwrap().read_block_into(0, rows, 0, cols, &mut b2).unwrap();
        prop_assert_eq!(&b1, &a);
        prop_assert_eq!(&b2, &a);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn future_versions_rejected_gracefully(version in 3u8..=255, case in any::<u64>()) {
        let a: Matrix<f64> = sample(4, 3, case);
        let path = tmp("future", case);
        write_v2(&path, "var", &a, V2Options::default()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[5] = version; // the version byte of the magic
        std::fs::write(&path, &bytes).unwrap();
        match NcsimReader::open(&path) {
            Ok(_) => prop_assert!(false, "version {version} must be rejected"),
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_truncation_rejected(cut in 1usize..200, case in any::<u64>()) {
        let a: Matrix<f64> = sample(16, 6, case);
        let path = tmp("trunc", case);
        write_v2(&path, "var", &a, V2Options { chunk_rows: 4, codec: Codec::ShuffleRle }).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = cut.min(full.len() - 1);
        std::fs::write(&path, &full[..full.len() - cut]).unwrap();
        // Either the header validation or the data read must fail cleanly.
        if let Ok(mut r) = NcsimReader::open(&path) {
            let mut dst: Matrix<f64> = Matrix::zeros(0, 0);
            prop_assert!(r.read_block_into(0, 16, 0, 6, &mut dst).is_err());
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn dtype_mismatch_is_a_typed_error() {
    let a: Matrix<f32> = sample(6, 4, 1);
    let path = tmp("dtype", 0);
    write_v2(&path, "var", &a, V2Options::default()).unwrap();
    let mut r = NcsimReader::open(&path).unwrap();
    let mut dst: Matrix<f64> = Matrix::zeros(0, 0);
    let err = r.read_block_into(0, 6, 0, 4, &mut dst).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    std::fs::remove_file(&path).ok();
}
