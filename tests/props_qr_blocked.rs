//! Contract tests for the blocked compact-WY QR path.
//!
//! The panel width (`set_qr_block` / `PSVD_QR_BLOCK`) — unlike the thread
//! count — changes rounding, so every test that pins it holds a process
//! lock and restores automatic resolution on drop. Within a fixed width
//! the results must be bitwise identical across thread counts; across
//! widths they must agree to factorization tolerances (orthogonality,
//! reconstruction, canonical non-negative R diagonal).

use pyparsvd::linalg::norms::orthogonality_error;
use pyparsvd::linalg::par;
use pyparsvd::linalg::qr::{qr_block, qr_thin_into, reconstruction_error, set_qr_block, QrFactors};
use pyparsvd::linalg::random::{gaussian_matrix, matrix_with_spectrum, seeded_rng};
use pyparsvd::linalg::validate::spectrum_error;
use pyparsvd::linalg::{Matrix, Workspace};
use pyparsvd::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// `set_qr_block` is process-global state; serialize every test that
/// touches it (poisoning from an asserting test must not cascade).
static QR_KNOB: Mutex<()> = Mutex::new(());

struct KnobGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_qr_block(0);
        par::set_num_threads(0);
    }
}

fn lock_knob() -> KnobGuard {
    KnobGuard(QR_KNOB.lock().unwrap_or_else(|e| e.into_inner()))
}

fn qr_with_block(a: &Matrix, nb: usize) -> QrFactors {
    set_qr_block(nb);
    let mut ws = Workspace::new();
    let mut q = Matrix::zeros(0, 0);
    let mut r = Matrix::zeros(0, 0);
    qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
    QrFactors { q, r }
}

fn assert_contract(a: &Matrix, f: &QrFactors) {
    assert!(reconstruction_error(a, f) < 1e-12, "A != QR for {:?}", a.shape());
    assert!(orthogonality_error(&f.q) < 1e-12, "Q not orthonormal for {:?}", a.shape());
    let p = f.r.rows();
    for i in 0..p.min(f.r.cols()) {
        assert!(f.r[(i, i)] >= 0.0, "negative R diagonal at {i}");
        for j in 0..i {
            assert_eq!(f.r[(i, j)], 0.0, "R not upper triangular at ({i},{j})");
        }
    }
}

#[test]
fn blocked_matches_unblocked_reference() {
    let _g = lock_knob();
    let shapes = [(200, 64), (96, 96), (64, 150)]; // tall, square, wide
    for (idx, &(m, n)) in shapes.iter().enumerate() {
        let a = gaussian_matrix(m, n, &mut seeded_rng(1000 + idx as u64));
        let base = qr_with_block(&a, 1);
        assert_contract(&a, &base);
        for nb in [4, 8, 16, 32, 64] {
            let f = qr_with_block(&a, nb);
            assert_contract(&a, &f);
            assert!(
                (&f.q - &base.q).max_abs() < 1e-12,
                "Q diverged from unblocked at nb={nb}, shape {m}x{n}"
            );
            assert!(
                (&f.r - &base.r).max_abs() < 1e-12,
                "R diverged from unblocked at nb={nb}, shape {m}x{n}"
            );
        }
    }
}

#[test]
fn strided_view_factors_like_materialized_copy() {
    let _g = lock_knob();
    set_qr_block(16);
    let a = gaussian_matrix(220, 80, &mut seeded_rng(7));
    let blk = a.block(3, 200, 5, 70);
    let cpy = a.submatrix(3, 200, 5, 70);
    let mut ws = Workspace::new();
    let (mut q1, mut r1) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    let (mut q2, mut r2) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    qr_thin_into(blk, &mut q1, &mut r1, &mut ws);
    qr_thin_into(cpy.view(), &mut q2, &mut r2, &mut ws);
    // The working copy normalizes strides up front, so a view input is
    // bitwise indistinguishable from its materialized copy.
    assert_eq!(q1, q2);
    assert_eq!(r1, r2);
    assert_contract(&cpy, &QrFactors { q: q1, r: r1 });
}

#[test]
fn rank_deficient_and_zero_inputs() {
    let _g = lock_knob();
    // Rank-deficient: trailing Q columns are non-unique, so compare the
    // factorization contract rather than entries.
    let mut a = gaussian_matrix(120, 30, &mut seeded_rng(21));
    let dup = a.col(0);
    for j in 30 - 8..30 {
        a.set_col(j, &dup); // rank <= 23
    }
    // Widen past the blocking threshold by stacking the columns twice.
    let wide = a.hstack(&a);
    for nb in [1, 8, 32] {
        let f = qr_with_block(&wide, nb);
        assert!(reconstruction_error(&wide, &f) < 1e-12);
        assert!(orthogonality_error(&f.q) < 1e-12);
        for i in 0..f.r.rows() {
            assert!(f.r[(i, i)] >= 0.0);
        }
    }
    // Zero matrix: R must be exactly zero at any width.
    let z = Matrix::zeros(80, 60);
    for nb in [1, 16] {
        let f = qr_with_block(&z, nb);
        assert_eq!(f.r, Matrix::zeros(60, 60), "nb={nb}");
        assert!(orthogonality_error(&f.q) < 1e-14);
    }
}

#[test]
fn blocked_bitwise_identical_across_thread_counts() {
    let _g = lock_knob();
    // Big enough that the WY trailing updates cross the packed-GEMM
    // parallel threshold, so the row partition genuinely splits.
    let a = gaussian_matrix(600, 128, &mut seeded_rng(3));
    set_qr_block(32);
    par::set_num_threads(1);
    let base = qr_with_block(&a, 32);
    for threads in [2usize, 4, 8] {
        par::set_num_threads(threads);
        let f = qr_with_block(&a, 32);
        assert_eq!(f.q, base.q, "Q bits changed at {threads} threads");
        assert_eq!(f.r, base.r, "R bits changed at {threads} threads");
    }
}

#[test]
fn blocked_path_reuses_workspace() {
    let _g = lock_knob();
    set_qr_block(16);
    let a = gaussian_matrix(120, 64, &mut seeded_rng(11));
    let mut ws = Workspace::new();
    let mut q = Matrix::zeros(0, 0);
    let mut r = Matrix::zeros(0, 0);
    qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
    ws.reset_stats();
    for _ in 0..5 {
        qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
    }
    let s = ws.stats();
    assert_eq!(s.misses, 0, "warm workspace must serve every blocked-path take");
    assert_eq!(s.fresh_bytes, 0);
    assert!(s.takes > 0);
}

#[test]
fn parallel_streaming_matches_unblocked_seed() {
    let _g = lock_knob();
    // A full distributed run whose local and root TSQR stages both cross
    // the blocking threshold (80x48 local, 96x48 stacked at the root).
    let spec: Vec<f64> = (0..48).map(|i| 5.0 * 0.85f64.powi(i)).collect();
    let a = matrix_with_spectrum(160, 48, &spec, &mut seeded_rng(99));
    let run = |nb: usize| {
        set_qr_block(nb);
        let blocks = pyparsvd::data::partition::split_rows(&a, 2);
        let cfg = SvdConfig::new(8).with_r1(48).with_r2(48);
        let world = World::new(2);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], 48);
            d.singular_values().to_vec()
        });
        assert_eq!(out[0], out[1], "ranks disagree at nb={nb}");
        out[0].clone()
    };
    let reference = run(1); // the unblocked seed path
    let blocked = run(8);
    assert!(
        spectrum_error(&reference, &blocked) < 1e-9,
        "blocked spectrum {blocked:?} vs seed {reference:?}"
    );
}

#[test]
fn auto_heuristic_and_clamping() {
    let _g = lock_knob();
    set_qr_block(0);
    // Pure function of shape: small problems stay unblocked, large ones
    // get cache-sized panels, and the width never exceeds min(m, n).
    assert_eq!(qr_block(45, 13), 1);
    assert_eq!(qr_block(30, 6), 1);
    assert_eq!(qr_block(200, 64), 16);
    assert_eq!(qr_block(16384, 128), 32);
    set_qr_block(64);
    assert_eq!(qr_block(100, 8), 8, "explicit width must clamp to min(m, n)");
    assert_eq!(qr_block(4096, 256), 64);
}
