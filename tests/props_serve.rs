//! Property-based tests of the SVD service's invariants: however arrivals
//! are chopped, wherever eviction strikes, and whatever transient faults
//! fire, a session's committed model is a pure function of its column
//! stream. Shrunk proptest counterexamples are promoted to named tests
//! alongside the properties (see DESIGN.md, "Promoting proptest
//! regressions") — each named case calls the same shared property body.

use proptest::prelude::*;
use pyparsvd::linalg::Matrix;
use pyparsvd::prelude::*;
use pyparsvd::serve::{BatchQueue, ChaosSpec, CoalescedBatches, SessionSpec, SessionState};

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

fn snapshots(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i as f64 * 0.59 + j as f64 * 1.31 + seed as f64) * 0.29).sin()
            + 0.3 * ((i as f64 - j as f64 * 1.7) * 0.07).cos()
    })
}

fn spec(rows: usize, ranks: usize, batch: usize) -> SessionSpec {
    SessionSpec::new(2, rows)
        .with_svd(SvdConfig::new(2).with_r1(4).with_r2(4).with_tree_fanout(0).with_tree_depth(0))
        .with_ranks(ranks)
        .with_batch(batch)
}

/// Stream `a` into a session through arrival chunks whose widths are drawn
/// from `chop_seed`, draining ready rounds as they form; returns the
/// committed model. The property under test: `chop_seed` must not matter.
fn model_via_arrivals(
    a: &Matrix,
    sp: SessionSpec,
    chop_seed: u64,
) -> pyparsvd::serve::SessionModel {
    let mut q = BatchQueue::new(a.rows(), sp.batch, a.cols() + sp.batch);
    let mut st = SessionState::new(sp);
    let mut rng = chop_seed;
    let mut at = 0;
    while at < a.cols() {
        let w = (1 + lcg(&mut rng) as usize % 4).min(a.cols() - at);
        q.push(a.submatrix(0, a.rows(), at, at + w)).unwrap();
        at += w;
        // Drain with a chop-dependent round grouping too: neither arrival
        // widths nor round boundaries may leak into the model.
        while let Some(round) = q.take_round(1 + lcg(&mut rng) as usize % 3) {
            st.update(&round);
        }
    }
    if let Some(round) = q.take_flush(usize::MAX / 2) {
        st.update(&round);
    }
    st.model()
}

/// Shared body: two different chop seeds, bitwise-identical models.
fn check_arrival_pattern_independence(
    rows: usize,
    cols: usize,
    ranks: usize,
    batch: usize,
    data_seed: u64,
    chop_a: u64,
    chop_b: u64,
) {
    let a = snapshots(rows, cols, data_seed);
    let ma = model_via_arrivals(&a, spec(rows, ranks, batch), chop_a);
    let mb = model_via_arrivals(&a, spec(rows, ranks, batch), chop_b);
    assert_eq!(ma.singular_values, mb.singular_values, "σ depend on arrival chopping");
    assert_eq!(ma.modes, mb.modes, "modes depend on arrival chopping");
    assert_eq!(ma.snapshots_seen, cols);
}

/// Shared body: spill-to-bytes/rehydrate after `evict_after` rounds (0 =
/// before anything committed), bitwise equal to a never-evicted twin.
fn check_eviction_any_point(
    rows: usize,
    n_batches: usize,
    ranks: usize,
    batch: usize,
    data_seed: u64,
    evict_after: usize,
) {
    let a = snapshots(rows, n_batches * batch, data_seed);
    let sp = spec(rows, ranks, batch);
    let mut churned = SessionState::new(sp);
    let mut resident = SessionState::new(sp);
    for b in 0..n_batches {
        if b == evict_after {
            let blob = churned.to_bytes();
            churned = SessionState::from_bytes(sp, &blob).expect("own blob decodes");
        }
        let round =
            CoalescedBatches::from_batches(vec![a.submatrix(0, rows, b * batch, (b + 1) * batch)]);
        churned.update(&round);
        resident.update(&round);
    }
    let (mc, mr) = (churned.model(), resident.model());
    assert_eq!(
        mc.singular_values, mr.singular_values,
        "eviction at round {evict_after} leaked into σ"
    );
    assert_eq!(mc.modes, mr.modes, "eviction at round {evict_after} leaked into modes");
}

/// Shared body: transient-only chaos (drops/corruption/delays, no deaths)
/// commits the same bits as an unfaulted twin.
fn check_transient_chaos_bitwise(
    rows: usize,
    n_batches: usize,
    batch: usize,
    data_seed: u64,
    drop_p: f64,
    corrupt_p: f64,
    delay_p: f64,
) {
    let a = snapshots(rows, n_batches * batch, data_seed);
    let sp = spec(rows, 2, batch);
    let chaos = ChaosSpec::new(data_seed ^ 0xFA11)
        .with_drop_prob(drop_p)
        .with_corrupt_prob(corrupt_p)
        .with_delay_prob(delay_p, 2);
    let mut faulted = SessionState::new(sp.with_chaos(chaos));
    let mut clean = SessionState::new(sp);
    for b in 0..n_batches {
        let round =
            CoalescedBatches::from_batches(vec![a.submatrix(0, rows, b * batch, (b + 1) * batch)]);
        let plan = chaos.plan_for("prop", faulted.rounds(), 2);
        faulted.update_chaos(&round, &plan);
        clean.update(&round);
    }
    let (mf, mc) = (faulted.model(), clean.model());
    assert_eq!(mf.singular_values, mc.singular_values, "transient faults leaked into σ");
    assert_eq!(mf.modes, mc.modes, "transient faults leaked into modes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arrival_pattern_independence(
        rows in 12usize..28,
        cols in 8usize..24,
        ranks in 1usize..3,
        batch in 2usize..5,
        data_seed in 0u64..1000,
        chop_a in 0u64..1000,
        chop_b in 0u64..1000,
    ) {
        // Guard the per-rank tallness requirement for the chosen world.
        prop_assume!(rows / ranks >= batch.max(4) + 2);
        check_arrival_pattern_independence(rows, cols, ranks, batch, data_seed, chop_a, chop_b);
    }

    #[test]
    fn eviction_at_any_round_is_bitwise_invisible(
        rows in 12usize..28,
        n_batches in 2usize..6,
        ranks in 1usize..3,
        batch in 2usize..5,
        data_seed in 0u64..1000,
        evict_frac in 0usize..6,
    ) {
        prop_assume!(rows / ranks >= batch.max(4) + 2);
        let evict_after = evict_frac % (n_batches + 1);
        check_eviction_any_point(rows, n_batches, ranks, batch, data_seed, evict_after);
    }

    #[test]
    fn transient_chaos_commits_bitwise(
        rows in 14usize..24,
        n_batches in 2usize..5,
        batch in 2usize..4,
        data_seed in 0u64..500,
        drop_p in 0.0f64..0.5,
        corrupt_p in 0.0f64..0.4,
        delay_p in 0.0f64..0.4,
    ) {
        prop_assume!(rows / 2 >= batch.max(4) + 2);
        check_transient_chaos_bitwise(rows, n_batches, batch, data_seed, drop_p, corrupt_p, delay_p);
    }

    #[test]
    fn queue_depth_is_respected(
        rows in 2usize..6,
        batch in 1usize..5,
        depth_extra in 0usize..12,
        ops in proptest::collection::vec((1usize..5, any::<bool>()), 1..40),
    ) {
        let depth = batch + depth_extra;
        let mut q = BatchQueue::new(rows, batch, depth);
        let mut accepted = 0u64;
        for (w, drain) in ops {
            match q.push(Matrix::zeros(rows, w)) {
                Ok(()) => accepted += w as u64,
                Err(full) => {
                    prop_assert_eq!(full.depth, depth);
                    // Rejection is exact: this chunk really would overflow.
                    prop_assert!(full.pending + w > depth);
                }
            }
            prop_assert!(q.pending_snapshots() <= depth, "backpressure breached");
            prop_assert_eq!(q.accepted(), accepted);
            if drain {
                let before = q.pending_snapshots();
                if let Some(round) = q.take_round(2) {
                    prop_assert_eq!(round.snapshots() % batch, 0, "rounds carry full batches");
                    prop_assert_eq!(q.pending_snapshots(), before - round.snapshots());
                }
            }
        }
    }
}

// --- Promoted regressions -------------------------------------------------
// Shrunk counterexamples from exploratory runs of the properties above,
// promoted per DESIGN.md so the cases survive strategy changes.

/// Promoted from `arrival_pattern_independence` (seed pinned by shrink:
/// rows=12, cols=9, ranks=1, batch=4, data_seed=0, chops 0 vs 7). cols=9
/// with batch=4 leaves a 1-column runt AND chop 7 produces an arrival
/// chunk that straddles the final full-batch boundary — the queue's
/// cross-chunk column cursor and the flush's runt cut are both on the
/// line.
#[test]
fn arrival_runt_boundary_case() {
    check_arrival_pattern_independence(12, 9, 1, 4, 0, 0, 7);
}

/// Promoted from `eviction_at_any_round_is_bitwise_invisible` (shrunk:
/// rows=12, n_batches=2, ranks=2, batch=2, data_seed=3, evict_after=0).
/// Eviction *before the first committed round* serializes a session whose
/// checkpoints are still uninitialized (zero snapshots seen) — the blob
/// round-trip must preserve "not yet initialized" rather than fabricating
/// an empty-but-initialized state.
#[test]
fn evict_before_first_batch_case() {
    check_eviction_any_point(12, 2, 2, 2, 3, 0);
}
