//! Property-based tests of the streaming and distributed drivers'
//! invariants: whatever the data, batching, K, or rank count, the trackers
//! must keep their contracts.

use proptest::prelude::*;
use pyparsvd::data::partition::split_rows;
use pyparsvd::linalg::norms::orthogonality_error;
use pyparsvd::linalg::random::{matrix_with_spectrum, seeded_rng};
use pyparsvd::linalg::validate::{max_principal_angle, spectrum_error};
use pyparsvd::linalg::Matrix;
use pyparsvd::prelude::*;

/// Random tall snapshot matrices with a controlled decaying spectrum.
fn snapshot_strategy() -> impl Strategy<Value = Matrix> {
    (20usize..60, 8usize..24, 0u64..10_000).prop_map(|(m, n, seed)| {
        let p = m.min(n);
        let spec: Vec<f64> = (0..p).map(|i| 5.0 * 0.75f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streaming_invariants_hold_for_any_batching(
        a in snapshot_strategy(),
        batch in 2usize..10,
        k in 1usize..6,
        ff in 0.5f64..1.0,
    ) {
        let mut s = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(ff));
        s.fit_batched(&a, batch);
        // Mode count clamps to available data.
        prop_assert!(s.modes().cols() <= k);
        prop_assert_eq!(s.modes().cols(), s.singular_values().len());
        // Orthonormality and ordering always hold.
        prop_assert!(orthogonality_error(s.modes()) < 1e-9);
        for w in s.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &v in s.singular_values() {
            prop_assert!(v >= 0.0 && v.is_finite());
        }
        prop_assert_eq!(s.snapshots_seen(), a.cols());
    }

    #[test]
    fn exactness_on_rank_deficient_streams(
        m in 30usize..60,
        n_batches in 2usize..5,
        seed in 0u64..1000,
    ) {
        // Data of exact rank 3 streamed with ff = 1: the K=5 tracker must
        // recover the batch SVD exactly (no energy is ever truncated away).
        let n = n_batches * 7;
        let a = matrix_with_spectrum(m, n, &[4.0, 2.0, 1.0], &mut seeded_rng(seed));
        let mut s = SerialStreamingSvd::new(SvdConfig::new(5).with_forget_factor(1.0));
        s.fit_batched(&a, 7);
        let (u_ref, s_ref) = batch_truncated_svd(&a, 3);
        prop_assert!(spectrum_error(&s_ref, &s.singular_values()[..3]) < 1e-8);
        prop_assert!(max_principal_angle(&u_ref, &s.modes().first_columns(3)) < 1e-5);
    }

    #[test]
    fn parallel_singular_values_identical_on_all_ranks(
        a in snapshot_strategy(),
        n_ranks in 2usize..5,
        k in 1usize..4,
    ) {
        // Guard the TSQR tallness requirement: local rows >= stacked cols.
        let needed = (k + a.cols()).max(1);
        prop_assume!(a.rows() / n_ranks >= needed);
        let blocks = split_rows(&a, n_ranks);
        let cfg = SvdConfig::new(k).with_r1(a.cols()).with_r2(a.cols());
        let world = World::new(n_ranks);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], a.cols());
            d.singular_values().to_vec()
        });
        for r in 1..n_ranks {
            prop_assert_eq!(&out[0], &out[r], "rank {} disagrees with rank 0", r);
        }
    }

    #[test]
    fn apmos_matches_batch_svd_without_truncation(
        a in snapshot_strategy(),
        n_ranks in 2usize..5,
    ) {
        prop_assume!(a.rows() >= n_ranks * 2);
        let k = 3.min(a.cols());
        let cfg = SvdConfig::new(k).with_r1(a.cols()).with_r2(a.cols());
        let blocks = split_rows(&a, n_ranks);
        let world = World::new(n_ranks);
        let out = world.run(|comm| parallel_svd_once(comm, cfg, &blocks[comm.rank()]));
        let (_, s_ref) = batch_truncated_svd(&a, k);
        prop_assert!(
            spectrum_error(&s_ref, &out[0].1) < 1e-7,
            "APMOS spectrum {:?} vs batch {:?}", out[0].1, s_ref
        );
    }

    #[test]
    fn gathered_modes_are_orthonormal(
        a in snapshot_strategy(),
        n_ranks in 2usize..4,
    ) {
        prop_assume!(a.rows() >= n_ranks * 2);
        let k = 2.min(a.cols());
        let cfg = SvdConfig::new(k).with_r1(a.cols()).with_r2(a.cols());
        let blocks = split_rows(&a, n_ranks);
        let world = World::new(n_ranks);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.initialize(&blocks[comm.rank()]);
            d.gather_modes(0)
        });
        let modes = out[0].as_ref().unwrap();
        // Mixed mode ships the gathered blocks over an f32 wire, so the
        // assembled modes are orthonormal to single precision only.
        let tol = if cfg.precision == Precision::Mixed { 1e-6 } else { 1e-8 };
        prop_assert!(orthogonality_error(modes) < tol);
    }
}
