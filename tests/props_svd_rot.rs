//! Contract tests for the level-3 Givens rotation accumulation in the
//! bidiagonal QR iteration, and property tests for `bidiagonal_svd` on
//! adversarial spectra.
//!
//! The rotation window capacity (`set_rot_block` / `PSVD_ROT_BLOCK`) —
//! unlike the thread count — changes rounding in the factors, so every
//! test that pins it holds a process lock and restores automatic
//! resolution on drop. Within a fixed capacity the results must be
//! bitwise identical across thread counts; across capacities the
//! singular values are bitwise identical (the rotation parameters derive
//! only from the bidiagonal, which accumulation never touches) and the
//! factors agree to the ≤1e-12 contract.

use pyparsvd::linalg::norms::orthogonality_error;
use pyparsvd::linalg::par;
use pyparsvd::linalg::random::{gaussian_matrix, seeded_rng};
use pyparsvd::linalg::rot::{rot_block, set_rot_block};
use pyparsvd::linalg::svd::convergence_stats;
use pyparsvd::linalg::svd::golub_kahan::{bidiagonal_svd_with_info, golub_kahan_svd_with_info};
use pyparsvd::linalg::svd::jacobi::jacobi_svd;
use pyparsvd::linalg::{Matrix, Svd};
use std::sync::{Mutex, MutexGuard};

/// `set_rot_block` is process-global state; serialize every test that
/// touches it (poisoning from an asserting test must not cascade).
static ROT_KNOB: Mutex<()> = Mutex::new(());

struct KnobGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_rot_block(0);
        par::set_num_threads(0);
    }
}

fn lock_knob() -> KnobGuard {
    KnobGuard(ROT_KNOB.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Run `bidiagonal_svd` on `(d, e)` seeded with identity factors and
/// assert the full outcome contract: convergence reported, singular
/// values non-negative + descending + finite, factors orthonormal.
fn assert_bidiagonal_contract(d: Vec<f64>, e: Vec<f64>) -> Svd {
    let n = d.len();
    let (f, info) = bidiagonal_svd_with_info(d, e, Matrix::identity(n), Matrix::identity(n));
    assert!(info.converged, "adversarial spectrum must still converge");
    for w in f.s.windows(2) {
        assert!(w[0] >= w[1], "not descending: {:?}", f.s);
    }
    for &sv in &f.s {
        assert!(sv >= 0.0 && sv.is_finite(), "bad singular value {sv}");
    }
    assert!(orthogonality_error(&f.u) < 1e-10, "U lost orthogonality");
    assert!(orthogonality_error(&f.vt.transpose()) < 1e-10, "V lost orthogonality");
    f
}

/// Dense bidiagonal matrix from `(d, e)` for cross-checks.
fn bidiagonal_matrix(d: &[f64], e: &[f64]) -> Matrix {
    let n = d.len();
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        b[(i, i)] = d[i];
        if i + 1 < n {
            b[(i, i + 1)] = e[i];
        }
    }
    b
}

#[test]
fn clustered_singular_values() {
    // Three tight clusters: QR iteration deflation must split them
    // without stalling, and the high-accuracy Jacobi reference must agree.
    let d = vec![5.0, 5.0 + 1e-13, 5.0 - 1e-13, 1.0, 1.0, 1.0 + 1e-12, 1e-3, 1e-3];
    let e = vec![1e-7, 2e-7, 1e-9, 3e-8, 1e-7, 2e-9, 1e-8];
    let f = assert_bidiagonal_contract(d.clone(), e.clone());
    let jac = jacobi_svd(&bidiagonal_matrix(&d, &e));
    for (x, y) in f.s.iter().zip(&jac.s) {
        assert!((x - y).abs() < 1e-10 * jac.s[0], "GK {x} vs Jacobi {y}");
    }
}

#[test]
fn graded_extreme_scales_stay_finite_and_converge() {
    // 1e+150 down to 1e-150: shift computation squares the diagonal, so
    // this walks the edge of overflow; the solve must stay finite,
    // ordered and orthogonal, and pin the dominant value normwise.
    let d: Vec<f64> = (0..11).map(|i| 10f64.powi(150 - 30 * i)).collect();
    let e: Vec<f64> = (0..10).map(|i| 10f64.powi(140 - 30 * i)).collect();
    let f = assert_bidiagonal_contract(d, e);
    assert!((f.s[0] - 1e150).abs() < 1e-10 * 1e150, "dominant sigma {:.3e}", f.s[0]);

    // The mirrored all-tiny spectrum must not be flushed to zero.
    let d: Vec<f64> = (0..8).map(|i| 10f64.powi(-143 - i)).collect();
    let e: Vec<f64> = (0..7).map(|i| 10f64.powi(-146 - i)).collect();
    let f = assert_bidiagonal_contract(d, e);
    assert!(f.s[0] > 1e-144 && f.s[0] < 1e-142, "tiny spectrum collapsed: {:?}", f.s);
}

#[test]
fn zero_diagonal_and_superdiagonal_entries() {
    // Interior and trailing zero diagonals exercise both deflation chases;
    // zero superdiagonals split the problem into independent blocks.
    let d = vec![3.0, 0.0, 2.0, 5.0, 0.0, 1.5];
    let e = vec![1.0, 1.25, 0.0, 0.75, 0.5];
    let f = assert_bidiagonal_contract(d.clone(), e.clone());
    let jac = jacobi_svd(&bidiagonal_matrix(&d, &e));
    for (x, y) in f.s.iter().zip(&jac.s) {
        assert!((x - y).abs() < 1e-12 * jac.s[0], "GK {x} vs Jacobi {y}");
    }
    // An exactly-zero singular value must come out exactly last.
    let d = vec![2.0, 4.0, 0.0];
    let e = vec![0.0, 0.0];
    let f = assert_bidiagonal_contract(d, e);
    assert_eq!(f.s[2], 0.0);
}

#[test]
fn graded_moderate_scales_match_jacobi() {
    // Eight orders of magnitude — inside the normwise regime, so the
    // values themselves must agree with the high-accuracy reference.
    let d: Vec<f64> = (0..9).map(|i| 10f64.powi(-i)).collect();
    let e: Vec<f64> = (0..8).map(|i| 0.3 * 10f64.powi(-i)).collect();
    let f = assert_bidiagonal_contract(d.clone(), e.clone());
    let jac = jacobi_svd(&bidiagonal_matrix(&d, &e));
    for (x, y) in f.s.iter().zip(&jac.s) {
        assert!((x - y).abs() < 1e-12 * jac.s[0], "GK {x} vs Jacobi {y}");
    }
}

#[test]
fn accumulated_matches_direct_reference() {
    let _g = lock_knob();
    let a = gaussian_matrix(300, 48, &mut seeded_rng(42));
    set_rot_block(1);
    let (direct, di) = golub_kahan_svd_with_info(&a);
    assert!(di.converged);
    for nb in [8, 48] {
        set_rot_block(nb);
        let (acc, ai) = golub_kahan_svd_with_info(&a);
        assert!(ai.converged);
        assert_eq!(ai.iterations, di.iterations, "iteration path must not depend on nb");
        // The QR iteration reads only the bidiagonal, which accumulation
        // never touches — the singular values are bitwise identical.
        assert_eq!(direct.s, acc.s, "sigma diverged at nb={nb}");
        assert!((&acc.u - &direct.u).max_abs() < 1e-12, "U contract broken at nb={nb}");
        assert!((&acc.vt - &direct.vt).max_abs() < 1e-12, "V contract broken at nb={nb}");
        assert!(orthogonality_error(&acc.u) < 1e-10);
    }
}

#[test]
fn jacobi_accumulated_matches_direct_reference() {
    let _g = lock_knob();
    let a = gaussian_matrix(200, 12, &mut seeded_rng(17));
    set_rot_block(1);
    let direct = jacobi_svd(&a);
    set_rot_block(12);
    let acc = jacobi_svd(&a);
    for (x, y) in direct.s.iter().zip(&acc.s) {
        assert!((x - y).abs() <= 1e-12 * direct.s[0], "sigma diverged: {x} vs {y}");
    }
    assert!(acc.reconstruction_error(&a) < 1e-12);
    assert!(orthogonality_error(&acc.u) < 1e-10);
}

#[test]
fn fixed_block_bitwise_identical_across_thread_counts() {
    let _g = lock_knob();
    // Big enough that the window flush GEMM crosses the packed engine's
    // parallel threshold, so the row partition genuinely splits.
    let a = gaussian_matrix(600, 96, &mut seeded_rng(5));
    set_rot_block(96);
    par::set_num_threads(1);
    let (base, _) = golub_kahan_svd_with_info(&a);
    for threads in [2usize, 4, 8] {
        par::set_num_threads(threads);
        let (f, _) = golub_kahan_svd_with_info(&a);
        assert_eq!(f.s, base.s, "sigma bits changed at {threads} threads");
        assert_eq!(f.u, base.u, "U bits changed at {threads} threads");
        assert_eq!(f.vt, base.vt, "V bits changed at {threads} threads");
    }
}

#[test]
fn auto_heuristic_override_and_clamping() {
    let _g = lock_knob();
    set_rot_block(0);
    // Pure function of shape: short factors stay direct, tall factors take
    // the (cache-capped) full width, and the window never exceeds the
    // column count.
    assert_eq!(rot_block(64, 256), 1);
    assert_eq!(rot_block(127, 256), 1);
    assert_eq!(rot_block(8192, 256), 256);
    assert_eq!(rot_block(8192, 2048), 512);
    assert_eq!(rot_block(8192, 4), 1);
    set_rot_block(40);
    assert_eq!(rot_block(64, 256), 40, "override beats the heuristic");
    assert_eq!(rot_block(8192, 16), 16, "override clamps to the column count");
}

#[test]
fn successful_solves_do_not_bump_failure_counter() {
    let before = convergence_stats::failures();
    let a = gaussian_matrix(90, 30, &mut seeded_rng(23));
    let (_, info) = golub_kahan_svd_with_info(&a);
    assert!(info.converged);
    assert_eq!(
        convergence_stats::failures(),
        before,
        "converged solves must not be counted as bailouts"
    );
}
