//! Property tests for the zero-copy view layer and the workspace-fed
//! `_into` kernels: every `_into` form must be **bitwise identical** to its
//! allocating counterpart — on contiguous matrices and on strided
//! sub-views — and a warmed-up streaming run must draw every temporary
//! from its workspace without touching the allocator.

use proptest::prelude::*;
use psvd_core::{SerialStreamingSvd, SvdConfig};
use psvd_linalg::gemm::{
    gram, gram_into, matmul, matmul_into, matmul_nt, matmul_nt_into, matmul_tn, matmul_tn_into,
};
use psvd_linalg::qr::{qr_thin_into, thin_qr};
use psvd_linalg::random::{gaussian_matrix, seeded_rng};
use psvd_linalg::randomized::{randomized_range_finder, randomized_range_finder_into};
use psvd_linalg::{Matrix, RandomizedConfig, Workspace};

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    gaussian_matrix(rows, cols, &mut seeded_rng(seed))
}

/// A strided interior block of a larger random matrix, returned both as a
/// copy (for the allocating kernel) and as the parent + bounds (for the
/// view-consuming kernel).
fn strided_case(rows: usize, cols: usize, pad: usize, seed: u64) -> (Matrix, usize, usize) {
    let parent = rand_mat(rows + 2 * pad, cols + 2 * pad, seed);
    (parent, pad, pad)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_into_bitwise_matches_matmul(
        m in 1usize..40,
        k in 1usize..50,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, k, seed);
        let b = rand_mat(k, n, seed.wrapping_add(1));
        let mut c = Matrix::zeros(0, 0);
        matmul_into(a.view(), b.view(), &mut c);
        prop_assert_eq!(c, matmul(&a, &b));
    }

    #[test]
    fn matmul_into_on_strided_views_bitwise_matches_contiguous(
        m in 1usize..32,
        k in 1usize..40,
        n in 1usize..32,
        pad in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let (pa, r0, c0) = strided_case(m, k, pad, seed);
        let (pb, s0, d0) = strided_case(k, n, pad, seed.wrapping_add(7));
        let va = pa.block(r0, r0 + m, c0, c0 + k);
        let vb = pb.block(s0, s0 + k, d0, d0 + n);
        let mut c = Matrix::zeros(0, 0);
        matmul_into(va, vb, &mut c);
        // Packing normalizes the layout, so the strided inputs must give
        // the same bits as dense copies of the same sub-blocks.
        prop_assert_eq!(c, matmul(&va.to_matrix(), &vb.to_matrix()));
    }

    #[test]
    fn matmul_tn_into_bitwise_matches(
        k in 1usize..50,
        m in 1usize..36,
        n in 1usize..36,
        pad in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let (pa, r0, c0) = strided_case(k, m, pad, seed);
        let (pb, s0, d0) = strided_case(k, n, pad, seed.wrapping_add(2));
        let va = pa.block(r0, r0 + k, c0, c0 + m);
        let vb = pb.block(s0, s0 + k, d0, d0 + n);
        let mut c = Matrix::zeros(0, 0);
        matmul_tn_into(va, vb, &mut c);
        prop_assert_eq!(c, matmul_tn(&va.to_matrix(), &vb.to_matrix()));
    }

    #[test]
    fn matmul_nt_into_bitwise_matches(
        m in 1usize..36,
        k in 1usize..50,
        n in 1usize..36,
        pad in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let (pa, r0, c0) = strided_case(m, k, pad, seed);
        let (pb, s0, d0) = strided_case(n, k, pad, seed.wrapping_add(3));
        let va = pa.block(r0, r0 + m, c0, c0 + k);
        let vb = pb.block(s0, s0 + n, d0, d0 + k);
        let mut c = Matrix::zeros(0, 0);
        matmul_nt_into(va, vb, &mut c);
        prop_assert_eq!(c, matmul_nt(&va.to_matrix(), &vb.to_matrix()));
    }

    #[test]
    fn gram_into_bitwise_matches(
        m in 1usize..60,
        n in 1usize..30,
        pad in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let (pa, r0, c0) = strided_case(m, n, pad, seed);
        let va = pa.block(r0, r0 + m, c0, c0 + n);
        let mut g = Matrix::zeros(0, 0);
        gram_into(va, &mut g);
        prop_assert_eq!(g, gram(&va.to_matrix()));
    }

    #[test]
    fn transpose_into_bitwise_matches(
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, n, seed);
        let mut t = Matrix::zeros(0, 0);
        a.transpose_into(&mut t);
        prop_assert_eq!(t, a.transpose());
    }

    #[test]
    fn qr_thin_into_bitwise_matches_thin_qr(
        m in 1usize..48,
        n in 1usize..24,
        pad in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let (pa, r0, c0) = strided_case(m, n, pad, seed);
        let va = pa.block(r0, r0 + m, c0, c0 + n);
        let mut ws = Workspace::new();
        let mut q = Matrix::zeros(0, 0);
        let mut r = Matrix::zeros(0, 0);
        // Twice through the same warm workspace: warm and cold buffers
        // must both give the allocating kernel's bits.
        for _ in 0..2 {
            qr_thin_into(va, &mut q, &mut r, &mut ws);
            let f = thin_qr(&va.to_matrix());
            prop_assert_eq!(&q, &f.q);
            prop_assert_eq!(&r, &f.r);
        }
    }

    #[test]
    fn range_finder_into_bitwise_matches(
        m in 4usize..40,
        n in 2usize..20,
        rank in 1usize..6,
        q_iters in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, n, seed);
        let cfg = RandomizedConfig::new(rank).with_power_iterations(q_iters);
        let reference = randomized_range_finder(&a, &cfg, &mut seeded_rng(seed ^ 0x5eed));
        let mut ws = Workspace::new();
        let mut q = Matrix::zeros(0, 0);
        randomized_range_finder_into(&a, &cfg, &mut seeded_rng(seed ^ 0x5eed), &mut q, &mut ws);
        prop_assert_eq!(&q, &reference);
        // Second pass on warm buffers: same RNG state, same bits, no misses.
        ws.reset_stats();
        randomized_range_finder_into(&a, &cfg, &mut seeded_rng(seed ^ 0x5eed), &mut q, &mut ws);
        prop_assert_eq!(&q, &reference);
        prop_assert_eq!(ws.stats().misses, 0);
    }

    #[test]
    fn vstack_owned_bitwise_matches_vstack_all(
        cols in 1usize..12,
        nblocks in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let blocks: Vec<Matrix> = (0..nblocks)
            .map(|i| {
                let h = ((seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % 10;
                rand_mat(h, cols, seed.wrapping_add(i as u64))
            })
            .collect();
        prop_assert_eq!(Matrix::vstack_owned(blocks.clone()), Matrix::vstack_all(&blocks));
    }

    #[test]
    fn hstack_into_bitwise_matches_hstack(
        rows in 1usize..20,
        c1 in 0usize..10,
        c2 in 0usize..10,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(rows, c1, seed);
        let b = rand_mat(rows, c2, seed.wrapping_add(11));
        let mut out = Matrix::zeros(0, 0);
        a.hstack_into(&b, &mut out);
        prop_assert_eq!(out, a.hstack(&b));
    }

    #[test]
    fn col_views_agree_with_col_copy(
        m in 1usize..30,
        n in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, n, seed);
        for j in 0..n {
            let copied = a.col(j);
            let via_iter: Vec<f64> = a.col_iter(j).collect();
            let via_view: Vec<f64> = (0..m).map(|i| a.col_view(j).at(i, 0)).collect();
            prop_assert_eq!(&via_iter, &copied);
            prop_assert_eq!(&via_view, &copied);
        }
    }

    #[test]
    fn block_view_matches_submatrix(
        m in 2usize..24,
        n in 2usize..24,
        seed in 0u64..1_000,
    ) {
        let a = rand_mat(m, n, seed);
        let (r0, r1, c0, c1) = (m / 4, m - m / 4, n / 4, n - n / 4);
        prop_assert_eq!(a.block(r0, r1, c0, c1).to_matrix(), a.submatrix(r0, r1, c0, c1));
    }
}

#[test]
#[should_panic(expected = "out of")]
fn block_out_of_range_panics() {
    let a = Matrix::<f64>::zeros(3, 3);
    let _ = a.block(1, 5, 0, 2);
}

#[test]
#[should_panic(expected = "inner dimensions mismatch")]
fn matmul_into_shape_mismatch_panics() {
    let a = Matrix::<f64>::zeros(3, 4);
    let b = Matrix::zeros(5, 2);
    let mut c = Matrix::zeros(0, 0);
    matmul_into(a.view(), b.view(), &mut c);
}

/// The tentpole acceptance check: after warm-up, a long streaming run must
/// never miss its workspace or grow a persistent buffer — every batch's
/// temporaries are recycled, so steady state performs zero transient
/// matrix allocations.
#[test]
fn fifty_batch_streaming_run_is_allocation_free_after_warmup() {
    let m = 2000;
    let batch = 6;
    let batches = 50;
    let data = Matrix::from_fn(m, batch * batches, |i, j| {
        ((i * 3 + j) as f64 * 0.013).sin() + 0.1 * ((i + 7 * j) as f64 * 0.031).cos()
    });
    // Materialize the batches up front so the measured window sees only the
    // driver's own allocations, not the test slicing its input.
    let chunks: Vec<Matrix> =
        (0..batches).map(|b| data.submatrix(0, m, b * batch, (b + 1) * batch)).collect();
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(5).with_r1(8).with_r2(8));
    svd.initialize(&chunks[0]);
    // Two warm-up batches populate the workspace pool and size the
    // persistent stack/Q/R buffers.
    for chunk in &chunks[1..3] {
        svd.incorporate_data(chunk);
    }
    svd.reset_scratch_stats();
    let (_, bytes0) = psvd_linalg::alloc_stats::snapshot();
    for chunk in &chunks[3..] {
        svd.incorporate_data(chunk);
    }
    let stats = svd.scratch_stats();
    assert!(stats.takes > 0, "the hot loop must draw from the workspace");
    assert_eq!(stats.misses, 0, "steady state must never miss the workspace");
    assert_eq!(stats.fresh_bytes, 0, "steady state must not allocate scratch");
    // Cross-check with the global Matrix allocation ledger: only the small
    // O((K+B)^2) core-SVD factors may allocate, never anything O(M). The
    // ledger is process-wide and sibling tests run concurrently, so this
    // bound is enforced only in single-threaded runs.
    let (_, bytes1) = psvd_linalg::alloc_stats::snapshot();
    if std::env::var_os("RUST_TEST_THREADS").is_some_and(|v| v == *"1") {
        let per_update = (bytes1 - bytes0) / (batches as u64 - 3);
        assert!(
            per_update < (m as u64) * 8,
            "steady-state update allocated {per_update} bytes — an O(M) transient slipped in"
        );
    }
    assert_eq!(svd.singular_values().len(), 5);
    assert_eq!(svd.modes().shape(), (m, 5));
}
