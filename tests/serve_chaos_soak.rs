//! Chaos soak for the SVD service: many tenants stream snapshots through
//! a server whose every session runs under a seeded fault schedule —
//! dropped payloads, corrupted receives, delayed/reordered messages and
//! periodic mid-stream rank deaths. The conformance bar is the library's
//! strongest guarantee: after the soak, every surviving session's model
//! (singular values AND modes) is **bitwise identical** to an unfaulted
//! twin replay of the same column stream. Transient faults must be
//! absorbed by the retry layer and permanent deaths must be healed by
//! whole-round replay from checkpoints, with zero numeric residue.

use pyparsvd::prelude::*;
use pyparsvd::serve::{
    ChaosSpec, CoalescedBatches, ServeConfig, ServeError, SessionSpec, SessionState, SvdServer,
};

const SESSIONS: usize = 25;
const BATCHES_PER_SESSION: usize = 42;
const BATCH: usize = 3;
const ROWS: usize = 18;

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

fn svd_cfg() -> SvdConfig {
    SvdConfig::new(2).with_r1(4).with_r2(4).with_tree_fanout(0).with_tree_depth(0)
}

fn tenant_ranks(idx: usize) -> usize {
    2 + idx % 2
}

fn stream_of(idx: usize) -> Matrix {
    Matrix::from_fn(ROWS, BATCHES_PER_SESSION * BATCH, |i, j| {
        ((i as f64 * 0.61 + j as f64 * 1.07 + idx as f64 * 5.0) * 0.23).sin()
            + 0.4 * ((i as f64 - 1.5 * j as f64 + idx as f64) * 0.13).cos()
    })
}

#[test]
fn chaos_soak_commits_bitwise_clean_models() {
    let chaos = ChaosSpec::new(0xC0FF_EE00_5EED)
        .with_drop_prob(0.35)
        .with_corrupt_prob(0.3)
        .with_delay_prob(0.25, 2)
        .with_death_every(7);
    let server = SvdServer::new(
        ServeConfig::default().with_workers(4).with_round_batches(3).with_queue_depth(256),
    );

    let mut tenants = Vec::new();
    for idx in 0..SESSIONS {
        let tenant = format!("tenant-{idx:02}");
        let spec = SessionSpec::new(2, ROWS)
            .with_svd(svd_cfg())
            .with_ranks(tenant_ranks(idx))
            .with_batch(BATCH)
            .with_chaos(chaos);
        server.open(&tenant, spec).unwrap();
        tenants.push((tenant, stream_of(idx)));
    }

    // Interleave arrivals across tenants in seed-chopped chunk widths, so
    // sessions contend for workers while their columns stay in order.
    let mut rng = 0x5EED_0001;
    let mut cursor = [0usize; SESSIONS];
    let mut live = SESSIONS;
    while live > 0 {
        for (idx, (tenant, stream)) in tenants.iter().enumerate() {
            let at = cursor[idx];
            if at == stream.cols() {
                continue;
            }
            let width = (1 + lcg(&mut rng) as usize % 5).min(stream.cols() - at);
            let chunk = stream.submatrix(0, ROWS, at, at + width);
            match server.submit(tenant, chunk.clone()) {
                Ok(()) => {}
                Err(ServeError::QueueFull { .. }) => {
                    server.drain();
                    server.submit(tenant, chunk).expect("drained queue accepts");
                }
                Err(e) => panic!("submit failed: {e}"),
            }
            cursor[idx] += width;
            if cursor[idx] == stream.cols() {
                live -= 1;
            }
        }
    }
    server.flush_all();
    server.drain();

    // The soak must actually have soaked: >= 1000 batch updates committed
    // under live faults, with at least one permanent death healed.
    let snap = server.stats().snapshot();
    assert_eq!(snap.snapshots_processed as usize, SESSIONS * BATCHES_PER_SESSION * BATCH);
    assert!(snap.updates >= 1000, "only {} session-updates soaked", snap.updates);
    assert!(snap.faults_absorbed > 0, "fault schedules never fired");
    assert!(snap.replays > 0, "no rank death was ever replayed");

    // Every session must agree bitwise with a fault-free twin fed the same
    // column stream (round partitioning is irrelevant: checkpoint-in /
    // checkpoint-out rounds are invisible).
    for (idx, (tenant, stream)) in tenants.iter().enumerate() {
        let served = server.model(tenant).unwrap();
        let twin_spec = SessionSpec::new(2, ROWS)
            .with_svd(svd_cfg())
            .with_ranks(tenant_ranks(idx))
            .with_batch(BATCH);
        let mut twin = SessionState::new(twin_spec);
        for b in 0..BATCHES_PER_SESSION {
            let batch = stream.submatrix(0, ROWS, b * BATCH, (b + 1) * BATCH);
            let report = twin.update(&CoalescedBatches::from_batches(vec![batch]));
            assert!(!report.replayed, "twin runs unfaulted");
        }
        let clean = twin.model();
        assert_eq!(
            served.singular_values, clean.singular_values,
            "{tenant}: singular values diverged under chaos"
        );
        assert_eq!(served.modes, clean.modes, "{tenant}: modes diverged under chaos");
        assert_eq!(served.snapshots_seen, clean.snapshots_seen);
    }
    server.shutdown();
}
