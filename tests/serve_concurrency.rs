//! Concurrency properties of the SVD service:
//!
//! 1. Queries are never blocked behind another tenant's update — they read
//!    a published `Arc` snapshot of the model, so even with every worker
//!    pinned inside a heavy round, a different tenant's queries answer.
//! 2. Sessions do not leak — repeated identical open/stream/close cycles
//!    reach an allocation steady state (identical per-cycle `Matrix`
//!    buffer and wire-traffic deltas), and the session map drains to zero.
//!
//! The allocation ledger is process-global, so the tests serialize on a
//! static mutex instead of trusting the harness's thread scheduling.

use std::sync::Mutex;

use pyparsvd::prelude::*;
use pyparsvd::serve::{ServeConfig, SessionSpec, SvdServer};

static ALLOC_LEDGER: Mutex<()> = Mutex::new(());

fn chunk(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i as f64 * 0.83 + j as f64 * 1.91 + seed as f64) * 0.17).sin()
    })
}

fn small_spec(rows: usize) -> SessionSpec {
    SessionSpec::new(2, rows).with_svd(SvdConfig::new(2).with_r1(4).with_r2(4)).with_batch(4)
}

#[test]
fn queries_answer_while_another_tenant_updates() {
    let _serial = ALLOC_LEDGER.lock().unwrap();
    // One worker only: if updates could block queries, pinning the sole
    // worker inside the heavy tenant's round would starve everyone.
    let server = SvdServer::new(ServeConfig::default().with_workers(1));
    server.open("light", small_spec(16)).unwrap();
    server
        .open(
            "heavy",
            SessionSpec::new(8, 2048)
                .with_svd(SvdConfig::new(8).with_r1(16).with_r2(16))
                .with_ranks(4)
                .with_batch(16),
        )
        .unwrap();

    // Commit a light model first so its queries have something to read.
    server.submit("light", chunk(16, 8, 1)).unwrap();
    server.drain();
    let baseline = server.singular_values("light").unwrap();

    // Storm light queries while the heavy round holds the only worker.
    // Retry the whole heavy round a few times in case it wins the race.
    let mut overlapped = 0u32;
    for attempt in 0..5 {
        server.submit("heavy", chunk(2048, 32, attempt)).unwrap();
        for _ in 0..20_000 {
            let busy = server.is_busy("heavy");
            let sigma = server.singular_values("light").unwrap();
            assert_eq!(sigma, baseline, "concurrent update must not disturb another tenant");
            if busy {
                overlapped += 1;
            }
        }
        server.drain();
        if overlapped > 0 {
            break;
        }
    }
    assert!(overlapped > 0, "no query ever overlapped the heavy round — not exercised");
    // The heavy tenant committed its rounds despite the query storm.
    assert!(server.session_rounds("heavy").unwrap() >= 1);
    server.shutdown();
}

#[test]
fn repeated_session_cycles_reach_allocation_steady_state() {
    let _serial = ALLOC_LEDGER.lock().unwrap();
    let server = SvdServer::new(ServeConfig::default().with_workers(2));

    let cycle = |tag: u64| {
        for t in ["cy-a", "cy-b", "cy-c"] {
            server.open(t, small_spec(24).with_ranks(2)).unwrap();
        }
        // Same columns every cycle, drained one batch at a time so every
        // cycle commits the same round structure — the work, and therefore
        // the allocations, must be identical once warmed up.
        for step in 0..2 {
            for t in ["cy-a", "cy-b", "cy-c"] {
                server.submit(t, chunk(24, 4, 7 + step)).unwrap();
                server.drain();
            }
        }
        for t in ["cy-a", "cy-b", "cy-c"] {
            server.submit(t, chunk(24, 2, 9)).unwrap();
            server.flush(t).unwrap();
            server.drain();
        }
        for t in ["cy-a", "cy-b", "cy-c"] {
            let sigma = server.singular_values(t).unwrap();
            assert_eq!(sigma.len(), 2, "cycle {tag}: model served");
            server.close(t).unwrap().expect("model committed");
        }
        assert_eq!(server.session_count(), 0, "cycle {tag}: sessions drained");
    };

    // Warm up once (lazy pools, hash map growth), then measure.
    cycle(0);
    let mut deltas = Vec::new();
    for tag in 1..=4 {
        let alloc0 = pyparsvd::linalg::alloc_stats::snapshot();
        let wire0 = server.stats().snapshot();
        cycle(tag);
        let alloc1 = pyparsvd::linalg::alloc_stats::snapshot();
        let wire1 = server.stats().snapshot();
        deltas.push((
            alloc1.0 - alloc0.0,
            wire1.wire_messages - wire0.wire_messages,
            wire1.wire_bytes - wire0.wire_bytes,
        ));
    }
    // A leak grows the per-cycle footprint; steady state pins it flat.
    for d in &deltas[1..] {
        assert_eq!(d, &deltas[0], "per-cycle allocation/traffic drifted: {deltas:?}");
    }
    assert!(deltas[0].1 > 0, "two-rank cycles must produce wire traffic");
    server.shutdown();
}
