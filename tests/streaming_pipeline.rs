//! End-to-end serial streaming pipelines on the paper's workloads.

use pyparsvd::data::burgers::{snapshot_matrix, BurgersConfig};
use pyparsvd::data::era5::{generate, Era5Config};
use pyparsvd::data::stream::column_batches;
use pyparsvd::linalg::norms::orthogonality_error;
use pyparsvd::linalg::validate::{max_principal_angle, spectrum_error};
use pyparsvd::prelude::*;

fn burgers_small() -> Matrix {
    snapshot_matrix(&BurgersConfig { grid_points: 512, snapshots: 80, ..BurgersConfig::default() })
}

#[test]
fn burgers_streaming_tracks_batch_svd() {
    let data = burgers_small();
    let k = 6;
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
    for batch in column_batches(&data, 20) {
        if svd.is_initialized() {
            svd.incorporate_data(&batch);
        } else {
            svd.initialize(&batch);
        }
    }
    let (u_ref, s_ref) = batch_truncated_svd(&data, k);
    assert!(
        spectrum_error(&s_ref[..3], &svd.singular_values()[..3]) < 0.01,
        "leading Burgers singular values should match within 1%: {:?} vs {:?}",
        &s_ref[..3],
        &svd.singular_values()[..3]
    );
    assert!(
        max_principal_angle(&u_ref.first_columns(3), &svd.modes().first_columns(3)) < 0.05,
        "leading Burgers modes should match"
    );
}

#[test]
fn burgers_modes_orthonormal_through_stream() {
    let data = burgers_small();
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(5)); // paper's ff = 0.95
    for batch in column_batches(&data, 16) {
        if svd.is_initialized() {
            svd.incorporate_data(&batch);
        } else {
            svd.initialize(&batch);
        }
        assert!(
            orthogonality_error(svd.modes()) < 1e-9,
            "orthonormality must hold after every single update"
        );
    }
}

#[test]
fn era5_streaming_recovers_leading_planted_modes() {
    let cfg = Era5Config { noise_level: 0.02, ..Era5Config::tiny() };
    let d = generate(&cfg);
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(cfg.n_modes + 2).with_forget_factor(1.0));
    svd.fit_batched(&d.snapshots, 32);
    for j in 0..2 {
        let planted = Matrix::from_columns(&[d.true_modes.col(j)]);
        let got = Matrix::from_columns(&[svd.modes().col(j)]);
        assert!(
            max_principal_angle(&planted, &got) < 0.05,
            "planted mode {j} should be recovered through the stream"
        );
    }
}

#[test]
fn smaller_batches_do_not_break_accuracy() {
    let data = burgers_small();
    let k = 4;
    let (_, s_ref) = batch_truncated_svd(&data, k);
    for batch in [5, 10, 20, 40, 80] {
        let mut svd = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
        svd.fit_batched(&data, batch);
        let err = spectrum_error(&s_ref[..2], &svd.singular_values()[..2]);
        assert!(err < 0.02, "batch={batch}: leading spectrum error {err}");
    }
}

#[test]
fn low_rank_streaming_on_burgers() {
    let data = burgers_small();
    let k = 4;
    let mut svd = SerialStreamingSvd::new(
        SvdConfig::new(k)
            .with_forget_factor(1.0)
            .with_low_rank(true)
            .with_power_iterations(2)
            .with_seed(3),
    );
    svd.fit_batched(&data, 20);
    let (_, s_ref) = batch_truncated_svd(&data, k);
    for (got, want) in svd.singular_values()[..2].iter().zip(&s_ref[..2]) {
        assert!(
            (got - want).abs() / want < 0.05,
            "randomized streaming sigma {got} vs deterministic {want}"
        );
    }
}

#[test]
fn snapshot_count_bookkeeping() {
    let data = burgers_small();
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(3));
    svd.fit_batched(&data, 23); // uneven: 23+23+23+11
    assert_eq!(svd.snapshots_seen(), 80);
    assert_eq!(svd.iteration(), 3);
}
