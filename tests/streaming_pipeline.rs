//! End-to-end serial streaming pipelines on the paper's workloads,
//! including out-of-core ingestion through the ncsim v2 prefetcher.

use pyparsvd::data::burgers::{snapshot_matrix, BurgersConfig};
use pyparsvd::data::era5::{generate, Era5Config};
use pyparsvd::data::ncsim::{write_v2, Codec, V2Options};
use pyparsvd::data::partition::block_range;
use pyparsvd::data::prefetch::SnapshotPrefetcher;
use pyparsvd::data::stream::{column_batches, MatrixBatchSource};
use pyparsvd::linalg::norms::orthogonality_error;
use pyparsvd::linalg::validate::{max_principal_angle, spectrum_error};
use pyparsvd::prelude::*;

fn burgers_small() -> Matrix {
    snapshot_matrix(&BurgersConfig { grid_points: 512, snapshots: 80, ..BurgersConfig::default() })
}

#[test]
fn burgers_streaming_tracks_batch_svd() {
    let data = burgers_small();
    let k = 6;
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
    for batch in column_batches(&data, 20) {
        if svd.is_initialized() {
            svd.incorporate_data(&batch);
        } else {
            svd.initialize(&batch);
        }
    }
    let (u_ref, s_ref) = batch_truncated_svd(&data, k);
    assert!(
        spectrum_error(&s_ref[..3], &svd.singular_values()[..3]) < 0.01,
        "leading Burgers singular values should match within 1%: {:?} vs {:?}",
        &s_ref[..3],
        &svd.singular_values()[..3]
    );
    assert!(
        max_principal_angle(&u_ref.first_columns(3), &svd.modes().first_columns(3)) < 0.05,
        "leading Burgers modes should match"
    );
}

#[test]
fn burgers_modes_orthonormal_through_stream() {
    let data = burgers_small();
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(5)); // paper's ff = 0.95
    for batch in column_batches(&data, 16) {
        if svd.is_initialized() {
            svd.incorporate_data(&batch);
        } else {
            svd.initialize(&batch);
        }
        assert!(
            orthogonality_error(svd.modes()) < 1e-9,
            "orthonormality must hold after every single update"
        );
    }
}

#[test]
fn era5_streaming_recovers_leading_planted_modes() {
    let cfg = Era5Config { noise_level: 0.02, ..Era5Config::tiny() };
    let d = generate(&cfg);
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(cfg.n_modes + 2).with_forget_factor(1.0));
    svd.fit_batched(&d.snapshots, 32);
    for j in 0..2 {
        let planted = Matrix::from_columns(&[d.true_modes.col(j)]);
        let got = Matrix::from_columns(&[svd.modes().col(j)]);
        assert!(
            max_principal_angle(&planted, &got) < 0.05,
            "planted mode {j} should be recovered through the stream"
        );
    }
}

#[test]
fn smaller_batches_do_not_break_accuracy() {
    let data = burgers_small();
    let k = 4;
    let (_, s_ref) = batch_truncated_svd(&data, k);
    for batch in [5, 10, 20, 40, 80] {
        let mut svd = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
        svd.fit_batched(&data, batch);
        let err = spectrum_error(&s_ref[..2], &svd.singular_values()[..2]);
        assert!(err < 0.02, "batch={batch}: leading spectrum error {err}");
    }
}

#[test]
fn low_rank_streaming_on_burgers() {
    let data = burgers_small();
    let k = 4;
    let mut svd = SerialStreamingSvd::new(
        SvdConfig::new(k)
            .with_forget_factor(1.0)
            .with_low_rank(true)
            .with_power_iterations(2)
            .with_seed(3),
    );
    svd.fit_batched(&data, 20);
    let (_, s_ref) = batch_truncated_svd(&data, k);
    for (got, want) in svd.singular_values()[..2].iter().zip(&s_ref[..2]) {
        assert!(
            (got - want).abs() / want < 0.05,
            "randomized streaming sigma {got} vs deterministic {want}"
        );
    }
}

fn burgers_file(name: &str, data: &Matrix, codec: Codec) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("psvd_pipeline_{name}_{}.ncs", std::process::id()));
    write_v2(&path, "burgers_u", data, V2Options { chunk_rows: 100, codec }).unwrap();
    path
}

#[test]
fn out_of_core_serial_is_bitwise_in_core() {
    let data = burgers_small();
    let (batch, k) = (16, 5);
    let cfg = SvdConfig::new(k).with_forget_factor(1.0);

    let mut in_core = SerialStreamingSvd::new(cfg);
    in_core.fit_source(&mut MatrixBatchSource::new(&data, batch)).unwrap();

    let path = burgers_file("serial", &data, Codec::ShuffleRle);
    for depth in [0usize, 2] {
        let mut pf = SnapshotPrefetcher::<f64>::open_with_depth(&path, batch, depth).unwrap();
        let mut svd = SerialStreamingSvd::new(cfg);
        svd.fit_source(&mut pf).unwrap();
        assert_eq!(
            svd.singular_values(),
            in_core.singular_values(),
            "depth {depth}: out-of-core sigmas must be bitwise identical"
        );
        assert_eq!(svd.modes(), in_core.modes(), "depth {depth}: modes must be bitwise identical");
        let st = pf.io_stats();
        assert_eq!(st.batches as usize, data.cols().div_ceil(batch));
        assert!(st.bytes_read > 0);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn out_of_core_parallel_ranks_stream_independent_hyperslabs() {
    let data = burgers_small();
    let (ranks, batch, k) = (4usize, 16usize, 5usize);
    let cfg = SvdConfig::new(k).with_forget_factor(1.0);

    // In-core distributed reference over the same stream.
    let blocks = pyparsvd::data::partition::split_rows(&data, ranks);
    let world = World::new(ranks);
    let reference = world.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.fit_batched(&blocks[comm.rank()], batch);
        (d.singular_values().to_vec(), d.local_modes().clone())
    });

    // Out-of-core: every rank opens its own prefetcher over its row
    // hyperslab — independent file handles, like MPI-IO independent mode.
    let path = burgers_file("parallel", &data, Codec::ShuffleRle);
    let rows = data.rows();
    let world = World::new(ranks);
    let streamed = world.run(|comm| {
        let (r0, r1) = block_range(rows, comm.size(), comm.rank());
        let mut pf = SnapshotPrefetcher::<f64>::open_rows(&path, r0, r1, batch).unwrap();
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        d.fit_source(&mut pf);
        (d.singular_values().to_vec(), d.local_modes().clone())
    });

    for (rank, (got, want)) in streamed.iter().zip(&reference).enumerate() {
        assert_eq!(got.0, want.0, "rank {rank}: out-of-core sigmas must be bitwise identical");
        assert_eq!(got.1, want.1, "rank {rank}: out-of-core modes must be bitwise identical");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn prefetch_io_failure_surfaces_as_ingest_error() {
    let data = burgers_small();
    let path = burgers_file("corrupt", &data, Codec::Raw);
    let full = std::fs::read(&path).unwrap();

    // Truncating the payload is caught at open time: the chunk table no
    // longer fits the file.
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert!(
        SnapshotPrefetcher::<f64>::open_with_depth(&path, 16, 2).is_err(),
        "truncated file must be rejected at open"
    );

    // Corrupting a chunk's internal segment-length table passes the header
    // checks (it is only validated lazily, on first read of that chunk), so
    // the failure must instead surface from the driver's fit_source.
    // Layout: header = magic(8) + name_len(4) + "burgers_u"(9) + rows(8)
    // + cols(8) + dtype(1) + codec(1) + chunk_rows(8) = 47, then the
    // 6-entry chunk table (512 rows / 100 per chunk) = 48 bytes.
    let mut bytes = full.clone();
    bytes[95..99].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let mut pf = SnapshotPrefetcher::<f64>::open_with_depth(&path, 16, 2).unwrap();
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(4).with_forget_factor(1.0));
    assert!(svd.fit_source(&mut pf).is_err(), "corrupt chunk must surface as an io::Error");
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_count_bookkeeping() {
    let data = burgers_small();
    let mut svd = SerialStreamingSvd::new(SvdConfig::new(3));
    svd.fit_batched(&data, 23); // uneven: 23+23+23+11
    assert_eq!(svd.snapshots_seen(), 80);
    assert_eq!(svd.iteration(), 3);
}
