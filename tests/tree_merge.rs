//! Merge-tree APMOS contracts: flat plans are bitwise-pinned to the flat
//! driver path, non-flat plans stay within the tracked truncation bound,
//! and the bound itself dominates the observed σ deviation on graded and
//! clustered spectra (the Weyl / Eckart–Young accounting of
//! `core/hierarchical.rs`).

use pyparsvd::data::partition::split_rows;
use pyparsvd::linalg::random::{matrix_with_spectrum, seeded_rng};
use pyparsvd::linalg::validate::max_principal_angle;
use pyparsvd::prelude::*;

const WORLDS: std::ops::RangeInclusive<usize> = 1..=9;
const FANOUTS: [usize; 3] = [2, 3, 4];
const DEPTHS: [usize; 3] = [1, 2, 3];

fn graded(m: usize, n: usize, seed: u64) -> Matrix {
    let spec: Vec<f64> = (0..n.min(m)).map(|i| 10.0 * 0.55f64.powi(i as i32)).collect();
    matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
}

fn clustered(m: usize, n: usize, seed: u64) -> Matrix {
    let spec: Vec<f64> =
        (0..n.min(m)).map(|i| if i < 3 { 8.0 } else { 0.5 * 0.8f64.powi(i as i32) }).collect();
    matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
}

/// One APMOS round through the driver, returning every rank's view:
/// assembled modes, the σ estimate, and the tree diagnostics (if any).
fn driver_round(
    a: &Matrix,
    n_ranks: usize,
    cfg: SvdConfig,
) -> (Matrix, Vec<f64>, Option<TreeMergeInfo>) {
    let blocks = split_rows(a, n_ranks);
    let world = World::new(n_ranks);
    let out = world.run(|comm| {
        let mut d = ParallelStreamingSvd::new(comm, cfg);
        let (phi, s) = d.parallel_svd(&blocks[comm.rank()]);
        (phi, s, d.tree_merge_info().cloned())
    });
    for (_, s, info) in &out {
        assert_eq!(s, &out[0].1, "σ must agree on every rank");
        assert_eq!(info, &out[0].2, "tree diagnostics must agree on every rank");
    }
    let modes = Matrix::vstack_all(&out.iter().map(|(p, _, _)| p.clone()).collect::<Vec<_>>());
    (modes, out[0].1.clone(), out[0].2.clone())
}

fn max_sigma_dev(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "σ count changed between plans: {a:?} vs {b:?}");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn flat_plans_are_bitwise_identical_to_the_flat_driver() {
    // Fanout >= world, depth 1 and cleared knobs all resolve to the flat
    // plan; each must reproduce the knob-free driver bit for bit.
    let a = graded(90, 12, 41);
    let base = SvdConfig::new(3)
        .with_r1(6)
        .with_r2(6)
        .with_precision(Precision::F64)
        .with_tree_fanout(0)
        .with_tree_depth(0);
    for n_ranks in WORLDS {
        let (modes, sigma, info) = driver_round(&a, n_ranks, base);
        assert!(info.is_none(), "flat default must not engage the tree engine");
        for cfg in [
            base.with_tree_depth(1),
            base.with_tree_fanout(n_ranks.max(2)),
            base.with_tree_fanout(100),
        ] {
            let (m2, s2, i2) = driver_round(&a, n_ranks, cfg);
            assert!(
                i2.is_none(),
                "{n_ranks} ranks, {:?}/{:?}: plan should resolve flat",
                cfg.tree_fanout,
                cfg.tree_depth
            );
            assert_eq!(s2, sigma, "{n_ranks} ranks: flat-resolved σ must be bitwise identical");
            assert_eq!(m2, modes, "{n_ranks} ranks: flat-resolved modes must be bitwise identical");
        }
    }
}

#[test]
fn fanout_sweep_stays_within_tracked_bound() {
    let a = graded(90, 12, 42);
    let base = SvdConfig::new(3)
        .with_r1(6)
        .with_r2(6)
        .with_precision(Precision::F64)
        .with_tree_fanout(0)
        .with_tree_depth(0);
    for n_ranks in WORLDS {
        let (flat_modes, flat_sigma, _) = driver_round(&a, n_ranks, base);
        for fanout in FANOUTS {
            let cfg = base.with_tree_fanout(fanout);
            let (modes, sigma, info) = driver_round(&a, n_ranks, cfg);
            if fanout >= n_ranks {
                assert_eq!(sigma, flat_sigma, "{n_ranks} ranks fanout {fanout}: bitwise");
                assert_eq!(modes, flat_modes, "{n_ranks} ranks fanout {fanout}: bitwise");
                continue;
            }
            let info = info.expect("non-flat plan must report diagnostics");
            let expect = MergeTreePlan::uniform(fanout, n_ranks).unwrap();
            assert_eq!(info.fanouts, expect.fanouts(), "{n_ranks} ranks fanout {fanout}");
            let dev = max_sigma_dev(&sigma, &flat_sigma);
            assert!(
                dev <= info.interior_bound() + 1e-8,
                "{n_ranks} ranks fanout {fanout}: σ deviation {dev} exceeds tracked bound {}",
                info.interior_bound()
            );
            // The well-separated leading subspace survives the tree merge.
            let angle = max_principal_angle(&flat_modes, &modes);
            assert!(angle < 1e-3, "{n_ranks} ranks fanout {fanout}: mode angle {angle}");
        }
    }
}

#[test]
fn depth_sweep_stays_within_tracked_bound() {
    let a = graded(90, 12, 43);
    let base = SvdConfig::new(3)
        .with_r1(6)
        .with_r2(6)
        .with_precision(Precision::F64)
        .with_tree_fanout(0)
        .with_tree_depth(0);
    for n_ranks in WORLDS {
        let (flat_modes, flat_sigma, _) = driver_round(&a, n_ranks, base);
        for depth in DEPTHS {
            let cfg = base.with_tree_depth(depth);
            let (modes, sigma, info) = driver_round(&a, n_ranks, cfg);
            match info {
                None => {
                    // Depth 1 (or a world too small to split) resolves flat.
                    assert_eq!(sigma, flat_sigma, "{n_ranks} ranks depth {depth}: bitwise");
                    assert_eq!(modes, flat_modes, "{n_ranks} ranks depth {depth}: bitwise");
                }
                Some(info) => {
                    assert!(info.depth() >= 2 && info.depth() <= depth);
                    let dev = max_sigma_dev(&sigma, &flat_sigma);
                    assert!(
                        dev <= info.interior_bound() + 1e-8,
                        "{n_ranks} ranks depth {depth}: σ deviation {dev} exceeds bound {}",
                        info.interior_bound()
                    );
                }
            }
        }
    }
}

#[test]
fn truncation_bound_dominates_on_graded_and_clustered_spectra() {
    // Property sweep: aggressive interior truncation (r1 well below the
    // column count) across spectra, worlds, fanouts and seeds. The
    // deterministic path makes the per-merge discarded energy exact, so
    // the accumulated bound must dominate the observed σ deviation — with
    // only round-off slack.
    let shapes: &[fn(usize, usize, u64) -> Matrix] = &[graded, clustered];
    for (which, gen) in shapes.iter().enumerate() {
        for seed in [7u64, 19, 31] {
            let a = gen(96, 16, seed);
            let cfg = SvdConfig::new(3)
                .with_r1(4)
                .with_r2(4)
                .with_precision(Precision::F64)
                .with_tree_fanout(0)
                .with_tree_depth(0);
            for n_ranks in [5usize, 8, 9] {
                let (_, flat_sigma, _) = driver_round(&a, n_ranks, cfg);
                for fanout in [2usize, 3] {
                    let (_, sigma, info) = driver_round(&a, n_ranks, cfg.with_tree_fanout(fanout));
                    let info = info.expect("non-flat plan");
                    let dev = max_sigma_dev(&sigma, &flat_sigma);
                    let bound = info.interior_bound();
                    assert!(
                        dev <= bound + 1e-8,
                        "spectrum {which} seed {seed} ranks {n_ranks} fanout {fanout}: \
                         deviation {dev} vs bound {bound}"
                    );
                    assert!(bound.is_finite() && bound >= 0.0);
                    // The bound is meaningful, not vacuous: it stays below
                    // the total spectral energy of the data.
                    let fro: f64 = a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt();
                    assert!(bound < fro, "bound {bound} should undercut ‖A‖_F = {fro}");
                }
            }
        }
    }
}

#[test]
fn randomized_tree_path_tracks_leading_sigma() {
    // The randomized inner SVD rides the same tree; its σ estimates stay
    // close to the deterministic flat reference on a decaying spectrum.
    let a = graded(96, 16, 44);
    let cfg = SvdConfig::new(3)
        .with_r1(8)
        .with_r2(8)
        .with_low_rank(true)
        .with_power_iterations(2)
        .with_seed(5)
        .with_precision(Precision::F64)
        .with_tree_fanout(3)
        .with_tree_depth(0);
    let (_, sigma, info) = driver_round(&a, 9, cfg);
    assert!(info.is_some());
    let (_, flat_sigma, _) = driver_round(&a, 9, cfg.with_tree_fanout(0));
    for (got, want) in sigma.iter().zip(&flat_sigma) {
        assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
    }
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn fanout_one_is_rejected_at_driver_construction() {
    // Fanout 1 can never reduce the active set; the driver rejects it up
    // front (inside the rank threads, which the harness surfaces as a
    // join panic) instead of hanging mid-stream.
    let a = graded(24, 8, 45);
    let blocks = split_rows(&a, 2);
    let cfg = SvdConfig::new(2).with_r1(8).with_r2(8).with_tree_fanout(1).with_tree_depth(0);
    let world = World::new(2);
    world.run(|comm| {
        let _ = ParallelStreamingSvd::<_, f64>::new(comm, cfg);
        let _ = &blocks;
    });
}
