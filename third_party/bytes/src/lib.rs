//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the `ncsim` container format uses:
//! [`BytesMut`] as a growable byte buffer with little-endian `put_*`
//! writers, and [`Buf`] little-endian `get_*` readers on `&[u8]` cursors.

use std::ops::{Deref, DerefMut};

/// Cursor-style reader. Implemented for `&[u8]`, where each `get_*`
/// consumes from the front of the slice (matching the real crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// Copy out the next `N` bytes (panics when short).
    fn copy_front<const N: usize>(&mut self) -> [u8; N];

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_front::<4>())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_front::<8>())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_front::<8>())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_front::<1>()[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_front<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "buffer too short: need {N}, have {}", self.len());
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Append-style writer trait.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(7);
        b.put_u64_le(1 << 40);
        b.put_f64_le(-2.5);
        b.put_slice(b"xy");
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u32_le(), 7);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f64_le(), -2.5);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.get_u8(), b'x');
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn short_read_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32_le();
    }
}
