//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates registry, so the workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and the `criterion_group!` / `criterion_main!`
//! macros. Statistics are deliberately simple — per-sample wall-clock
//! timing with min/median/mean reporting — and each benchmark is capped
//! by sample count *and* a soft time budget so `cargo bench` terminates
//! in bounded time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Soft per-benchmark time budget (warm-up excluded).
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// this stub defaults lower to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), target_samples: self.sample_size };
        f(&mut b);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), target_samples: self.sample_size };
        f(&mut b, input);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// End the group (presentation only; nothing buffered).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 30, _criterion: self }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(group: &str, id: &str, samples: &[f64]) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{label:<40} min {:>12} | median {:>12} | mean {:>12} | n={}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

/// Bundle benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
