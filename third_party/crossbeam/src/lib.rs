//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container cannot reach a crates registry, so the workspace
//! vendors the narrow slice of crossbeam it uses: `channel::{unbounded,
//! bounded, Sender, Receiver}` with `send`/`recv`/`try_recv`. The
//! implementation delegates to `std::sync::mpsc`, which provides the same
//! MPSC semantics these call sites rely on (the workspace never clones a
//! `Receiver`, so crossbeam's MPMC generality is not needed).

pub mod channel {
    //! MPSC channels with the crossbeam-channel surface this repo uses.

    use std::sync::mpsc;

    /// Sending half of a channel. Cloneable, usable from any thread.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like upstream crossbeam: no `T: Debug` bound.
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Deliver `value`, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages (ends at disconnect).
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// A channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// A channel with bounded buffering (rendezvous when `cap == 0`).
    ///
    /// `std::sync::mpsc::sync_channel` has the same blocking-send contract
    /// crossbeam's bounded channel provides, but a different sender type;
    /// this stub only exposes the unbounded sender, so `bounded` maps to an
    /// unbounded queue. No call site in this workspace relies on
    /// backpressure.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5usize).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn cross_thread_clone_senders() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn disconnect_observable() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
