//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates registry, so the workspace
//! vendors the subset of proptest it uses: range and collection
//! strategies, `prop_map` / `prop_flat_map`, `any::<T>()`, the
//! `proptest!` test macro and the `prop_assert*` / `prop_assume!` family,
//! driven by a deterministic per-test RNG.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs verbatim.
//! - **No persistence.** `.proptest-regressions` files are ignored.
//! - Case generation is seeded from the test name, so failures reproduce
//!   run-to-run but input streams differ from upstream proptest's.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type (Debug so failing cases can be reported).
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Reject generated values failing `pred` (retries internally).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, pred, reason }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: predicate rejected 1000 candidates ({})", self.reason);
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + std::fmt::Debug + Copy + PartialOrd,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.start..self.end)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + std::fmt::Debug + Copy + PartialOrd,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, moderately sized values; upstream generates the full
            // bit pattern space, but every property in this workspace wants
            // arithmetic-safe floats.
            rng.rng.gen_range(-1e6..1e6)
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test execution machinery used by the `proptest!` expansion.

    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test RNG.
    pub struct TestRng {
        pub(crate) rng: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A generator seeded from the test name (stable across runs).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { rng: rand::rngs::StdRng::seed_from_u64(h) }
        }

        /// Raw 64 random bits (escape hatch for custom strategies).
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumption-violating) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`cases` is the only knob this stub honors).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
        /// Upper bound on assumption rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64, max_global_rejects: 4096 }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. See the crate docs for supported syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in proptest::collection::vec(-1.0f64..1.0, 1..6)) {
///         prop_assert!(v.len() <= 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut executed: u32 = 0;
                let mut rejected: u32 = 0;
                while executed < cfg.cases {
                    let mut inputs: Vec<String> = Vec::new();
                    $(
                        let generated = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        inputs.push(format!("{} = {:?}", stringify!($arg), &generated));
                        let $arg = generated;
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => executed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > cfg.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {executed} passing case(s): {msg}\n  inputs:\n    {}",
                                stringify!($name),
                                inputs.join("\n    ")
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body (fails the case, reporting
/// its inputs, instead of panicking outright).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discard the current case (re-drawn without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn flat_map_and_map_compose(
            m in (1usize..5).prop_flat_map(|n| {
                crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(m.0, m.1.len());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 100usize..200) {
                prop_assert!(x < 100, "x was {}", x);
            }
        }
        inner();
    }
}
