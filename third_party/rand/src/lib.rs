//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//!
//! - [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`]
//! - [`Rng::gen_range`] over half-open ranges of the primitive numeric types
//! - [`Rng::sample`] / [`distributions::Distribution`]
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — not the ChaCha12 stream the real crate uses, so seeded
//! sequences differ from upstream `rand`, but they are deterministic,
//! portable, and statistically strong enough for the Gaussian test
//! matrices and randomized sketching this workspace needs.

/// Core trait: a source of random `u64`s. Mirrors `rand_core::RngCore`
/// narrowly enough for this workspace.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                // Rejection-free modulo with 128-bit widening; bias is
                // negligible (< 2^-64) for the range sizes used here.
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Rounding can land exactly on `high`; clamp into the
                // half-open interval.
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The user-facing random-number trait (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draw from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`. (The real crate's `gen` is generic;
    /// the workspace only draws unit floats.)
    fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The tiny part of `rand::distributions` the workspace touches.

    use super::RngCore;

    /// A sampling distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution on `[0, 1)` for `f64`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    // Re-import so `R: RngCore` bounds stay satisfied in downstream code.
    #[allow(unused)]
    fn _assert_obj_safe(_: &dyn Fn(&mut dyn RngCore)) {}
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256** behind SplitMix64
    /// seeding). Stands in for rand 0.8's ChaCha12-based `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from the system clock (entropy-light; fine for the
/// places that only need "some" randomness).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos as u64 ^ 0xD6E8_FEB8_6659_FD93)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m: usize = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
